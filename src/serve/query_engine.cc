#include "serve/query_engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/binary_db.h"

namespace gdim {

Result<QueryEngine> QueryEngine::FromIndex(PersistedIndex index,
                                           ServeOptions options) {
  const size_t p = index.features.size();
  for (size_t i = 0; i < index.db_bits.size(); ++i) {
    if (index.db_bits[i].size() != p) {
      return Status::InvalidArgument(
          "index row " + std::to_string(i) + " has " +
          std::to_string(index.db_bits[i].size()) + " bits, expected " +
          std::to_string(p));
    }
  }
  QueryEngine engine;
  engine.options_ = options;
  engine.packed_ = PackedBitMatrix::FromRows(index.db_bits);
  // The inverted lists only serve the prefilter; skip the O(n·p) pass and
  // their memory when it is disabled.
  if (options.containment_prefilter) {
    engine.supports_ = SupportsFromBitRows(index.db_bits);
    engine.supports_.resize(p);
  }
  engine.mapper_ = FeatureMapper(std::move(index.features));
  return engine;
}

Result<QueryEngine> QueryEngine::Open(const std::string& index_path,
                                      ServeOptions options) {
  Result<PersistedIndex> index = ReadIndexFile(index_path);
  if (!index.ok()) return index.status();
  return FromIndex(std::move(index).value(), options);
}

std::vector<int> QueryEngine::PrefilterCandidates(
    const std::vector<uint8_t>& fingerprint) const {
  // Collect the inverted lists of the set bits, smallest support first so
  // the running intersection shrinks as fast as possible.
  std::vector<const std::vector<int>*> lists;
  for (size_t r = 0; r < fingerprint.size(); ++r) {
    if (fingerprint[r] != 0) lists.push_back(&supports_[r]);
  }
  return IntersectSupports(std::move(lists));
}

Ranking QueryEngine::Query(const Graph& query, int k,
                           ServeQueryStats* stats) const {
  GDIM_CHECK(k >= 0);
  WallTimer timer;

  // Stage 1: fingerprint the query onto the selected dimension.
  const std::vector<uint8_t> fingerprint = mapper_.Map(query);
  int features_on = 0;
  for (uint8_t b : fingerprint) features_on += b != 0 ? 1 : 0;
  const std::vector<uint64_t> packed_query = packed_.PackQuery(fingerprint);

  // Stage 2: optional containment prefilter over the inverted lists.
  bool prefiltered = false;
  std::vector<int> candidates;
  if (options_.containment_prefilter && features_on > 0) {
    candidates = PrefilterCandidates(fingerprint);
    // Take the narrowed path only when it actually narrows: enough
    // candidates to answer, and fewer than a full scan would touch.
    prefiltered = static_cast<int>(candidates.size()) >= k &&
                  static_cast<int>(candidates.size()) < packed_.num_rows();
  }

  // Stage 3: popcount distance scan (narrowed or full) + deterministic rank.
  Ranking top;
  int scanned;
  std::vector<double> scores;
  if (prefiltered) {
    packed_.ScoreSubset(packed_query, candidates, &scores);
    top = TopKCandidates(candidates, scores, k);
    scanned = static_cast<int>(candidates.size());
  } else {
    packed_.ScoreAll(packed_query, &scores);
    top = TopKByScores(scores, k);
    scanned = packed_.num_rows();
  }

  if (stats != nullptr) {
    stats->latency_ms = timer.Millis();
    stats->features_on = features_on;
    stats->scanned = scanned;
    stats->prefiltered = prefiltered;
  }
  return top;
}

std::vector<Ranking> QueryEngine::QueryBatch(
    const GraphDatabase& queries, int k, ServeBatchReport* report,
    std::vector<ServeQueryStats>* per_query) const {
  WallTimer batch_timer;
  std::vector<Ranking> results(queries.size());
  std::vector<ServeQueryStats> stats(queries.size());
  ParallelFor(
      0, static_cast<int>(queries.size()),
      [&](int i) {
        results[static_cast<size_t>(i)] =
            Query(queries[static_cast<size_t>(i)], k,
                  &stats[static_cast<size_t>(i)]);
      },
      options_.threads);
  const double wall_ms = batch_timer.Millis();

  if (report != nullptr) {
    report->wall_ms = wall_ms;
    report->qps = wall_ms > 0.0
                      ? static_cast<double>(queries.size()) / (wall_ms * 1e-3)
                      : 0.0;
    std::vector<double> latencies;
    latencies.reserve(stats.size());
    report->scanned_rows = 0;
    report->prefiltered_queries = 0;
    for (const ServeQueryStats& s : stats) {
      latencies.push_back(s.latency_ms);
      report->scanned_rows += s.scanned;
      report->prefiltered_queries += s.prefiltered ? 1 : 0;
    }
    report->latency_ms = SummarizeLatencies(std::move(latencies));
  }
  if (per_query != nullptr) *per_query = std::move(stats);
  return results;
}

}  // namespace gdim
