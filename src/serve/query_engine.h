#ifndef GDIM_SERVE_QUERY_ENGINE_H_
#define GDIM_SERVE_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "core/index_io.h"
#include "core/mapper.h"
#include "core/packed_bits.h"
#include "core/topk.h"
#include "graph/graph.h"

namespace gdim {

/// Engine-wide serving knobs, fixed at load time.
struct ServeOptions {
  /// Worker threads for QueryBatch; 0 = DefaultThreadCount(). Results are
  /// identical for every thread count (queries are independent and the
  /// per-query ranking uses the deterministic RankByScores order).
  int threads = 0;

  /// Stage-2 prefilter: restrict the distance scan to database graphs that
  /// contain *every* feature of the query fingerprint (the candidate set
  /// ∩_{r ∈ φ(q)} sup(f_r) of containment search). A lossy-for-similarity
  /// heuristic — graphs missing one query feature are skipped even though
  /// they could rank in the exact top-k — so it is off by default and meant
  /// for supergraph-biased workloads. Falls back to a full scan when the
  /// filter does not actually narrow anything: fewer than k candidates
  /// survive, every graph survives, or the fingerprint is empty.
  bool containment_prefilter = false;
};

/// Per-query observability counters from one hot-path execution.
struct ServeQueryStats {
  double latency_ms = 0.0;
  int features_on = 0;     ///< set bits in the query fingerprint
  int scanned = 0;         ///< rows scored in stage 3
  bool prefiltered = false;  ///< stage 2 narrowed the scan (no fallback)
};

/// Aggregate report for one QueryBatch call.
struct ServeBatchReport {
  double wall_ms = 0.0;          ///< end-to-end batch wall time
  double qps = 0.0;              ///< queries / wall second
  LatencySummary latency_ms;     ///< per-query latency distribution
  long long scanned_rows = 0;    ///< total rows scored across the batch
  size_t prefiltered_queries = 0;  ///< queries served from a narrowed scan
};

/// The online query-serving engine: loads a built index once (feature
/// dimension + mapped database vectors), converts the vectors into the
/// packed word layout, and answers batched top-k queries through a
/// three-stage hot path —
///   1. fingerprint the query onto the selected dimension (VF2 matching),
///   2. optionally prefilter candidates via the feature inverted lists,
///   3. popcount-Hamming distance scan over the packed bit matrix.
/// No MCS computation and no graph algorithm other than stage 1 runs at
/// query time, which is the paper's whole online-search proposition.
class QueryEngine {
 public:
  /// Builds the serving structures from an in-memory persisted index.
  /// Validates vector shape; the index is consumed.
  static Result<QueryEngine> FromIndex(PersistedIndex index,
                                       ServeOptions options = {});

  /// Loads the index file at path (core/index_io format) and builds.
  static Result<QueryEngine> Open(const std::string& index_path,
                                  ServeOptions options = {});

  int num_graphs() const { return packed_.num_rows(); }
  int num_features() const { return mapper_.num_features(); }
  const ServeOptions& options() const { return options_; }
  const PackedBitMatrix& packed_database() const { return packed_; }

  /// Top-k ids + normalized mapped distances for one query, ascending
  /// score with id tie-break (identical order to TopK(MappedRanking(...))).
  Ranking Query(const Graph& query, int k,
                ServeQueryStats* stats = nullptr) const;

  /// Answers a whole batch across the thread pool. results[i] corresponds
  /// to queries[i]; output is deterministic for any thread count. Optional
  /// per-query stats (resized to the batch) and an aggregate report.
  std::vector<Ranking> QueryBatch(
      const GraphDatabase& queries, int k, ServeBatchReport* report = nullptr,
      std::vector<ServeQueryStats>* per_query = nullptr) const;

 private:
  QueryEngine() = default;

  /// Stage 2: ∩ sup(f_r) over the fingerprint's set bits (ascending ids).
  std::vector<int> PrefilterCandidates(
      const std::vector<uint8_t>& fingerprint) const;

  ServeOptions options_;
  FeatureMapper mapper_{GraphDatabase{}};
  PackedBitMatrix packed_;
  /// supports_[r] = sorted ids of database graphs containing feature r.
  std::vector<std::vector<int>> supports_;
};

}  // namespace gdim

#endif  // GDIM_SERVE_QUERY_ENGINE_H_
