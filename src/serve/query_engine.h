#ifndef GDIM_SERVE_QUERY_ENGINE_H_
#define GDIM_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/index_io.h"
#include "core/mapper.h"
#include "core/packed_bits.h"
#include "core/topk.h"
#include "graph/graph.h"
#include "index/ivf_index.h"
#include "serve/query_options.h"

namespace gdim {

/// Engine-wide serving knobs, fixed at load time.
struct ServeOptions {
  /// Worker threads for QueryBatch; 0 = DefaultThreadCount(). Results are
  /// identical for every thread count (queries are independent and the
  /// per-query ranking uses the deterministic RankByScores order).
  int threads = 0;

  /// Stage-2 prefilter: restrict the distance scan to database graphs that
  /// contain *every* feature of the query fingerprint (the candidate set
  /// ∩_{r ∈ φ(q)} sup(f_r) of containment search). A lossy-for-similarity
  /// heuristic — graphs missing one query feature are skipped even though
  /// they could rank in the exact top-k — so it is off by default and meant
  /// for supergraph-biased workloads. Falls back to a full scan when the
  /// filter does not actually narrow anything: no candidate survives, fewer
  /// than k candidates survive, or every live graph survives.
  bool containment_prefilter = false;

  /// Bucket count of the IVF candidate-pruning index behind ScanMode::
  /// kApprox; 0 picks ceil(sqrt(rows)) per engine (per shard). The index is
  /// always built — construction cost is one clustering pass over the base
  /// segment — so MODE=approx works out of the box on any engine.
  int ivf_buckets = 0;
};

/// Per-query observability counters from one hot-path execution.
struct ServeQueryStats {
  double latency_ms = 0.0;
  int features_on = 0;     ///< set bits in the query fingerprint
  int scanned = 0;         ///< rows scored in stage 3; the full-scan path
                           ///< scores every physical row, so removed-but-not-
                           ///< compacted rows count until Compact()
  bool prefiltered = false;  ///< stage 2 narrowed the scan (no fallback)
  bool approx = false;     ///< served from the IVF candidate path (kApprox)
  /// kApprox only: live rows the probe pruned (alive − scanned); what the
  /// approximate mode saved relative to a full scan of the live set.
  int rows_pruned = 0;
  /// Stage timings for the observability layer, microseconds; 0 when the
  /// stage did not run. On a sharded engine ivf_probe_usec sums the shard
  /// probes (like `scanned`) and gather_usec times the k-way merge.
  double ivf_probe_usec = 0.0;
  double gather_usec = 0.0;
  /// One sample per per-shard scan pass this query rode (the shard's wall
  /// time for its stage 2–3 work). Filled only by the sharded engine — a
  /// tiled scan attributes its per-shard passes to the tile's first query,
  /// so the sample count matches the passes actually run.
  std::vector<double> shard_scan_usec;
};

/// Aggregate report for one QueryBatch call.
struct ServeBatchReport {
  double wall_ms = 0.0;          ///< end-to-end batch wall time
  double qps = 0.0;              ///< queries / wall second
  LatencySummary latency_ms;     ///< per-query latency distribution
  long long scanned_rows = 0;    ///< total rows scored across the batch
  size_t prefiltered_queries = 0;  ///< queries served from a narrowed scan
  size_t approx_queries = 0;     ///< queries served from the IVF path
  /// Candidate rows exact-scored by approx queries (their share of
  /// scanned_rows) and the live rows their probes pruned away.
  long long approx_candidates_scanned = 0;
  long long approx_rows_pruned = 0;
  /// Per-stage samples (microseconds) for the metric registry: every
  /// per-shard scan pass, every IVF probe that ran, and every gather merge.
  /// The executor folds these into the process-wide stage histograms.
  std::vector<double> stage_scan_usec;
  std::vector<double> stage_ivf_probe_usec;
  std::vector<double> stage_gather_usec;
};

/// Aggregates per-query stats into a batch report (qps, latency
/// percentiles, scan counters). Shared by every batch entry point — the
/// engine's own, the sharded engine's, and the batch executor's.
void FillServeBatchReport(double wall_ms,
                          const std::vector<ServeQueryStats>& stats,
                          ServeBatchReport* report);

/// An immutable capture of one engine's live state, taken by Freeze() for
/// asynchronous snapshotting. The sealed base segment — the part that scales
/// with database size — is shared by refcount (it is only ever *replaced*,
/// by Compact, never mutated in place), so a freeze copies just the delta
/// segment, the tombstone bitset, and the id column: O(delta + n) small
/// fields, no O(n·p) word copying and no file I/O. A background writer can
/// then stream the capture to disk while the live engine keeps mutating.
struct FrozenEngineState {
  std::shared_ptr<const PackedBitMatrix> base;  ///< shared, never mutated
  PackedBitMatrix delta;                        ///< copied (small)
  std::vector<uint8_t> tombstones;              ///< copied; base + delta rows
  std::vector<int> row_ids;                     ///< copied; base + delta rows
  /// Copied IVF layout (centroids + postings, O(n) ints) so a background
  /// v3 snapshot can persist the IVFX section without touching the live
  /// index.
  IvfIndex ivf;

  /// Live rows in ascending-id order as (id, packed word pointer) pairs;
  /// pointers address into this capture's own segments and stay valid for
  /// the capture's lifetime (unlike QueryEngine::LiveRowWords, which a
  /// mutation invalidates).
  std::vector<std::pair<int, const uint64_t*>> LiveRowWords() const;
};

/// The live (non-tombstoned) postings of `ivf` lifted into external-id
/// space — the v3 IVFX payload of one engine. Buckets left empty by
/// tombstones are dropped (the reader rejects empty buckets), so the result
/// partitions exactly the live ids. tombstones/row_ids are indexed by
/// physical row, like the engine's own members.
PersistedIvf PersistIvf(const IvfIndex& ivf,
                        const std::vector<uint8_t>& tombstones,
                        const std::vector<int>& row_ids);

/// The online query-serving engine: loads a built index (feature dimension +
/// mapped database vectors), converts the vectors into the packed word
/// layout, and answers batched top-k queries through a three-stage hot path —
///   1. fingerprint the query onto the selected dimension (VF2 matching),
///   2. optionally prefilter candidates via the feature inverted lists,
///   3. popcount-Hamming distance scan over the packed bit matrices.
/// No MCS computation and no graph algorithm other than stage 1 runs at
/// query time, which is the paper's whole online-search proposition.
///
/// The engine is *mutable*: the database is a sealed base segment plus an
/// append-only delta segment of packed rows, with a tombstone bitset over
/// both. Insert appends to the delta, Remove tombstones, and Compact rewrites
/// the live rows into a fresh sealed base. Every graph keeps a stable
/// external id for its whole lifetime — ids survive removals of other graphs
/// and any number of compactions — and after any mutation sequence
/// Query/QueryBatch results are bit-identical to a fresh engine built over
/// the equivalent database (same live fingerprints in id order), because
/// physical row order is always ascending-id and the same deterministic
/// score-then-id ranking applies.
///
/// Mutations are not thread-safe: callers must not run Insert/Remove/Compact
/// concurrently with each other or with queries. The contract is
/// compiler-checked: every mutating method (and Freeze, which reads state a
/// mutation invalidates) REQUIRES writer_role() — the single writer
/// acquires the role once (the BatchExecutor's dispatcher thread does; a
/// single-threaded test scope uses ScopedRole) and Clang's thread-safety
/// analysis rejects any call path that never claimed it.
class QueryEngine {
 public:
  /// Builds the serving structures from an in-memory persisted index.
  /// Validates vector shape; the index is consumed. Row i keeps the
  /// persisted external id index.ids[i] (v2 snapshots carry them), or gets
  /// id i when the index has no id block (v1 files, fresh builds).
  static Result<QueryEngine> FromIndex(PersistedIndex index,
                                       ServeOptions options = {});

  /// Builds from an index already in the packed scan layout: the matrix is
  /// adopted as the sealed base segment with no unpack/repack round trip.
  /// The startup path for v2/v3 snapshots (ReadIndexFilePacked), where
  /// loading a database is a block read into this exact layout. When the
  /// index carries a persisted IVF section its buckets are adopted instead
  /// of re-clustered — postings arrive in external-id space, so the engine
  /// keeps exactly the buckets holding ids it owns (any shard partition of
  /// a snapshot works) after validating they cover its rows exactly once.
  static Result<QueryEngine> FromPacked(PackedIndex index,
                                        ServeOptions options = {});

  /// Loads the index file at path (core/index_io, v1 text or v2 binary)
  /// and builds; v2 files load through the direct packed-words path.
  static Result<QueryEngine> Open(const std::string& index_path,
                                  ServeOptions options = {});

  /// Installs `next` — a freshly built engine over a new dimension
  /// generation — into *this, with epoch continuity: the adopted epoch is
  /// strictly greater than this engine's current epoch, so epoch-keyed
  /// consumers (the result cache) can never replay an answer across the
  /// generation boundary even though every other piece of state (mapper,
  /// segments, ids) is replaced wholesale. Single-writer contract: must not
  /// run concurrently with queries or mutations, like every mutation.
  void AdoptGeneration(QueryEngine next) GDIM_REQUIRES(writer_role_);

  /// Generation-swap hook for a sharded owner whose epoch is a sum over
  /// shards: lifts this engine's epoch to at least `epoch`. Monotonic
  /// (never lowers), counts as a mutation for cache purposes.
  void RaiseEpochToAtLeast(uint64_t epoch) GDIM_REQUIRES(writer_role_);

  /// The single-writer capability; see the class comment. The accessor
  /// resolves to the same capability as the member, so call sites may spell
  /// either `engine.writer_role()` or (inside the class) `writer_role_`.
  ThreadRole& writer_role() const GDIM_RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

  /// Live (non-tombstoned) graphs.
  int num_graphs() const { return alive_; }
  int num_features() const { return mapper_.num_features(); }

  /// Monotonic mutation epoch: bumped by every successful Insert/Remove and
  /// by every Compact that does work. Two queries issued at the same epoch
  /// are guaranteed bit-identical answers (the epoch is what makes cached
  /// results safe to replay); queries never bump it. A bump does not imply
  /// results changed — Compact rewrites physical rows without changing any
  /// answer but still bumps, erring on the safe side.
  uint64_t epoch() const { return epoch_; }
  const ServeOptions& options() const { return options_; }
  /// The stage-1 fingerprinting mapper (callers of QueryMapped share it).
  const FeatureMapper& mapper() const { return mapper_; }

  /// Physical layout observability: sealed base rows, appended delta rows,
  /// and rows removed but not yet reclaimed by Compact().
  int base_rows() const { return base_->num_rows(); }
  int delta_rows() const { return delta_.num_rows(); }
  int tombstoned_rows() const { return num_tombstones_; }

  /// Buckets of the IVF candidate-pruning index (the `ivf_buckets` STATS
  /// gauge, summed over shards by the sharded engine).
  int ivf_buckets() const { return ivf_.num_buckets(); }
  /// The index itself, for tests and invariant checks.
  const IvfIndex& ivf_index() const { return ivf_; }

  /// Inserts a graph: fingerprints it with the engine's dimension (VF2) and
  /// appends the mapped row to the delta segment. Returns the new stable
  /// external id.
  Result<int> Insert(const Graph& graph) GDIM_REQUIRES(writer_role_);

  /// Insert for callers that already hold the mapped fingerprint (bulk
  /// loads, replication, benchmarks); width must equal num_features().
  Result<int> InsertMapped(const std::vector<uint8_t>& fingerprint)
      GDIM_REQUIRES(writer_role_);

  /// InsertMapped with a caller-assigned external id, for an owner of a
  /// global id sequence (the sharded engine routes ids across shards, so a
  /// single shard sees gaps). id must be >= the id this engine would assign
  /// next — per-engine ids stay strictly ascending — and the engine's id
  /// counter advances to id + 1.
  Result<int> InsertMappedWithId(const std::vector<uint8_t>& fingerprint,
                                 int id) GDIM_REQUIRES(writer_role_);

  /// Tombstones the graph with the given external id; NotFound if no live
  /// graph has that id. O(log n) + inverted-list maintenance.
  Status Remove(int id) GDIM_REQUIRES(writer_role_);

  /// Rewrites the live rows into a fresh sealed base segment, drops
  /// tombstones, and empties the delta. External ids are unchanged. No-op
  /// on an engine with no delta rows and no tombstones.
  void Compact() GDIM_REQUIRES(writer_role_);

  /// External ids of the live graphs, ascending (= physical row order).
  std::vector<int> alive_ids() const;

  /// Live rows in physical (= ascending external id) order as (id, packed
  /// word pointer) pairs; each pointer addresses words_per_row() words and
  /// stays valid until the next mutation. The streaming hook that lets a
  /// multi-shard owner snapshot all shards without byte materialization.
  std::vector<std::pair<int, const uint64_t*>> LiveRowWords() const;

  /// Words per packed row (= ceil(num_features() / 64)).
  size_t words_per_row() const { return base_->words_per_row(); }

  /// Captures the live state for asynchronous snapshotting: the sealed base
  /// is cloned by refcount, the delta/tombstones/ids are copied. The pause
  /// is O(delta rows · words + total rows) — independent of the sealed
  /// base's size — and the capture stays bit-exact at this epoch no matter
  /// what mutations follow. Same single-writer contract as mutations: the
  /// capture must be ordered against writers, so it REQUIRES the role.
  FrozenEngineState Freeze() const GDIM_REQUIRES(writer_role_);

  /// The equivalent database of the current live state: the feature
  /// dimension plus the live fingerprints and their external ids in
  /// ascending-id order. A fresh engine built from this index answers
  /// queries bit-identically, with the same external ids.
  PersistedIndex ToPersistedIndex() const;

  /// Writes the live state to path; v2 binary by default, streaming the
  /// packed words straight from the segments (no byte materialization) and
  /// persisting external ids, so a reloaded engine keeps serving the same
  /// ids. v1 text cannot carry ids and renumbers rows positionally. v3
  /// additionally persists the IVF layout and the epoch (a reload adopts
  /// both; generation is a sharded-owner concept and is written as 0 here —
  /// ShardedEngine::WriteSnapshot is the serving snapshot path).
  Status Snapshot(const std::string& path,
                  IndexFormat format = IndexFormat::kV2Binary) const;

  /// Top-k ids + normalized mapped distances for one query, ascending
  /// score with id tie-break (identical order to TopK(MappedRanking(...))
  /// over the live rows). All per-query knobs (k, scan mode) travel in
  /// `options`: engine.Query(q, {.k = 10}).
  Ranking Query(const Graph& query, const QueryOptions& options,
                ServeQueryStats* stats = nullptr) const;

  /// Stages 2–3 for a caller that already holds the mapped fingerprint:
  /// the scatter path of a sharded engine fingerprints a query once (VF2 is
  /// the expensive stage) and fans the mapped vector out to every shard.
  /// Width must equal num_features(). With kAuto, identical to Query() on
  /// a graph with this fingerprint.
  Ranking QueryMapped(const std::vector<uint8_t>& fingerprint,
                      const QueryOptions& options,
                      ServeQueryStats* stats = nullptr) const;

  /// Stage 2 alone: the live physical rows surviving ∩ sup(f_r) over the
  /// fingerprint's set bits (ascending). Requires the containment
  /// prefilter to be enabled and at least one set bit (the intersection
  /// over an empty feature family is degenerate — callers fall back to a
  /// full scan there, as QueryMapped does). A sharded owner collects these
  /// once per shard, decides narrowed-vs-full globally, and feeds them
  /// back through QueryMappedCandidates — one intersection pass total.
  std::vector<int> PrefilterCandidateRows(
      const std::vector<uint8_t>& fingerprint) const;

  /// Stage 3 alone, over an explicit candidate row set (stage 2 already
  /// done by the owner): scores candidate_rows against the fingerprint and
  /// ranks with the usual score-then-id order, external ids in the result.
  /// stats reports a narrowed scan of candidate_rows.size() rows.
  Ranking QueryMappedCandidates(const std::vector<uint8_t>& fingerprint,
                                const QueryOptions& options,
                                const std::vector<int>& candidate_rows,
                                ServeQueryStats* stats = nullptr) const;

  /// Answers a whole batch across the thread pool. results[i] corresponds
  /// to queries[i]; output is deterministic for any thread count (and
  /// bit-identical for every scan kernel). Optional per-query stats
  /// (resized to the batch) and an aggregate report. Fingerprints the
  /// whole batch first (MapAll), then — unless the containment prefilter
  /// takes the per-query path — scans tiles of ActiveScanKernel()::
  /// tile_width() queries per row-block pass via QueryMappedTile.
  std::vector<Ranking> QueryBatch(
      const GraphDatabase& queries, const QueryOptions& options,
      ServeBatchReport* report = nullptr,
      std::vector<ServeQueryStats>* per_query = nullptr) const;

  /// Full-scan stage 3 for a contiguous tile of `count` pre-mapped
  /// fingerprints, scored together: every row block is loaded once and
  /// XORed against all `count` queries while cache-resident (the
  /// multi-query kernel path behind QueryBatch and the sharded engine's
  /// QueryMappedBatch). results[q] / (*stats)[q] correspond to
  /// fingerprints[q]; each equals QueryMapped(fingerprints[q],
  /// {.k = options.k, .scan_mode = ScanMode::kFull}) bit for bit. Per-query
  /// latency_ms reports the tile's wall time (each query waited for the
  /// shared pass).
  std::vector<Ranking> QueryMappedTile(
      const std::vector<uint8_t>* fingerprints, int count,
      const QueryOptions& options,
      std::vector<ServeQueryStats>* stats = nullptr) const;

 private:
  QueryEngine() = default;

  int total_rows() const { return base_->num_rows() + delta_.num_rows(); }

  /// Physical row of a live external id, or -1.
  int FindLiveRow(int id) const;

  /// Row `row` of the segmented matrix back as a 0/1 byte vector.
  std::vector<uint8_t> RowBits(int row) const;

  /// Stage 2: ∩ sup(f_r) over the fingerprint's set bits (ascending
  /// physical rows, live rows only — the lists are maintained on mutation).
  std::vector<int> PrefilterCandidates(
      const std::vector<uint8_t>& fingerprint) const;

  /// Stage-3 subset scan across both segments (prefiltered path).
  void ScoreRows(const std::vector<uint64_t>& packed_query,
                 const std::vector<int>& rows,
                 std::vector<double>* scores) const;

  ServeOptions options_;
  FeatureMapper mapper_{GraphDatabase{}};
  /// Sealed segment. Held by shared_ptr and treated as immutable — Compact
  /// installs a fresh matrix instead of mutating — so Freeze() can clone it
  /// by refcount and a background snapshot can read it safely while the
  /// engine keeps mutating. Never null once the engine is built.
  std::shared_ptr<const PackedBitMatrix> base_;
  PackedBitMatrix delta_;  ///< append-only segment (same width as base_)
  /// tombstones_[row] = 1 iff the physical row was removed; sized to
  /// total_rows().
  std::vector<uint8_t> tombstones_;
  int num_tombstones_ = 0;
  int alive_ = 0;
  /// row_ids_[row] = stable external id; strictly increasing in row, so
  /// ranking by physical row and ranking by external id agree on ties.
  std::vector<int> row_ids_;
  int next_id_ = 0;
  /// Monotonic mutation counter; see epoch().
  uint64_t epoch_ = 0;
  /// supports_[r] = ascending physical rows of live graphs containing
  /// feature r; only populated when options_.containment_prefilter.
  std::vector<std::vector<int>> supports_;
  /// IVF candidate-pruning index over the packed rows (ScanMode::kApprox).
  /// Built with the engine (so a generation swap re-clusters over the new
  /// generation's fingerprints), maintained by Insert (nearest-centroid
  /// assignment) and Compact (posting renumbering); removals are lazy —
  /// Probe skips tombstones. Mutated only under writer_role_, like every
  /// other member.
  IvfIndex ivf_;
  /// See writer_role(). mutable: acquiring a role is not a state change.
  mutable ThreadRole writer_role_;
};

}  // namespace gdim

#endif  // GDIM_SERVE_QUERY_ENGINE_H_
