#ifndef GDIM_SERVE_QUERY_ENGINE_H_
#define GDIM_SERVE_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "core/index_io.h"
#include "core/mapper.h"
#include "core/packed_bits.h"
#include "core/topk.h"
#include "graph/graph.h"

namespace gdim {

/// Engine-wide serving knobs, fixed at load time.
struct ServeOptions {
  /// Worker threads for QueryBatch; 0 = DefaultThreadCount(). Results are
  /// identical for every thread count (queries are independent and the
  /// per-query ranking uses the deterministic RankByScores order).
  int threads = 0;

  /// Stage-2 prefilter: restrict the distance scan to database graphs that
  /// contain *every* feature of the query fingerprint (the candidate set
  /// ∩_{r ∈ φ(q)} sup(f_r) of containment search). A lossy-for-similarity
  /// heuristic — graphs missing one query feature are skipped even though
  /// they could rank in the exact top-k — so it is off by default and meant
  /// for supergraph-biased workloads. Falls back to a full scan when the
  /// filter does not actually narrow anything: no candidate survives, fewer
  /// than k candidates survive, or every live graph survives.
  bool containment_prefilter = false;
};

/// Per-query observability counters from one hot-path execution.
struct ServeQueryStats {
  double latency_ms = 0.0;
  int features_on = 0;     ///< set bits in the query fingerprint
  int scanned = 0;         ///< rows scored in stage 3; the full-scan path
                           ///< scores every physical row, so removed-but-not-
                           ///< compacted rows count until Compact()
  bool prefiltered = false;  ///< stage 2 narrowed the scan (no fallback)
};

/// Aggregate report for one QueryBatch call.
struct ServeBatchReport {
  double wall_ms = 0.0;          ///< end-to-end batch wall time
  double qps = 0.0;              ///< queries / wall second
  LatencySummary latency_ms;     ///< per-query latency distribution
  long long scanned_rows = 0;    ///< total rows scored across the batch
  size_t prefiltered_queries = 0;  ///< queries served from a narrowed scan
};

/// The online query-serving engine: loads a built index (feature dimension +
/// mapped database vectors), converts the vectors into the packed word
/// layout, and answers batched top-k queries through a three-stage hot path —
///   1. fingerprint the query onto the selected dimension (VF2 matching),
///   2. optionally prefilter candidates via the feature inverted lists,
///   3. popcount-Hamming distance scan over the packed bit matrices.
/// No MCS computation and no graph algorithm other than stage 1 runs at
/// query time, which is the paper's whole online-search proposition.
///
/// The engine is *mutable*: the database is a sealed base segment plus an
/// append-only delta segment of packed rows, with a tombstone bitset over
/// both. Insert appends to the delta, Remove tombstones, and Compact rewrites
/// the live rows into a fresh sealed base. Every graph keeps a stable
/// external id for its whole lifetime — ids survive removals of other graphs
/// and any number of compactions — and after any mutation sequence
/// Query/QueryBatch results are bit-identical to a fresh engine built over
/// the equivalent database (same live fingerprints in id order), because
/// physical row order is always ascending-id and the same deterministic
/// score-then-id ranking applies.
///
/// Mutations are not thread-safe: callers must not run Insert/Remove/Compact
/// concurrently with each other or with queries.
class QueryEngine {
 public:
  /// Builds the serving structures from an in-memory persisted index.
  /// Validates vector shape; the index is consumed. Row i keeps the
  /// persisted external id index.ids[i] (v2 snapshots carry them), or gets
  /// id i when the index has no id block (v1 files, fresh builds).
  static Result<QueryEngine> FromIndex(PersistedIndex index,
                                       ServeOptions options = {});

  /// Loads the index file at path (core/index_io, v1 text or v2 binary)
  /// and builds.
  static Result<QueryEngine> Open(const std::string& index_path,
                                  ServeOptions options = {});

  /// Live (non-tombstoned) graphs.
  int num_graphs() const { return alive_; }
  int num_features() const { return mapper_.num_features(); }
  const ServeOptions& options() const { return options_; }

  /// Physical layout observability: sealed base rows, appended delta rows,
  /// and rows removed but not yet reclaimed by Compact().
  int base_rows() const { return base_.num_rows(); }
  int delta_rows() const { return delta_.num_rows(); }
  int tombstoned_rows() const { return num_tombstones_; }

  /// Inserts a graph: fingerprints it with the engine's dimension (VF2) and
  /// appends the mapped row to the delta segment. Returns the new stable
  /// external id.
  Result<int> Insert(const Graph& graph);

  /// Insert for callers that already hold the mapped fingerprint (bulk
  /// loads, replication, benchmarks); width must equal num_features().
  Result<int> InsertMapped(const std::vector<uint8_t>& fingerprint);

  /// Tombstones the graph with the given external id; NotFound if no live
  /// graph has that id. O(log n) + inverted-list maintenance.
  Status Remove(int id);

  /// Rewrites the live rows into a fresh sealed base segment, drops
  /// tombstones, and empties the delta. External ids are unchanged. No-op
  /// on an engine with no delta rows and no tombstones.
  void Compact();

  /// External ids of the live graphs, ascending (= physical row order).
  std::vector<int> alive_ids() const;

  /// The equivalent database of the current live state: the feature
  /// dimension plus the live fingerprints and their external ids in
  /// ascending-id order. A fresh engine built from this index answers
  /// queries bit-identically, with the same external ids.
  PersistedIndex ToPersistedIndex() const;

  /// Writes the live state to path; v2 binary by default, streaming the
  /// packed words straight from the segments (no byte materialization) and
  /// persisting external ids, so a reloaded engine keeps serving the same
  /// ids. v1 text cannot carry ids and renumbers rows positionally.
  Status Snapshot(const std::string& path,
                  IndexFormat format = IndexFormat::kV2Binary) const;

  /// Top-k ids + normalized mapped distances for one query, ascending
  /// score with id tie-break (identical order to TopK(MappedRanking(...))
  /// over the live rows). Negative k is clamped to 0 (empty ranking) —
  /// one malformed request must not take down the serving process.
  Ranking Query(const Graph& query, int k,
                ServeQueryStats* stats = nullptr) const;

  /// Answers a whole batch across the thread pool. results[i] corresponds
  /// to queries[i]; output is deterministic for any thread count. Optional
  /// per-query stats (resized to the batch) and an aggregate report.
  std::vector<Ranking> QueryBatch(
      const GraphDatabase& queries, int k, ServeBatchReport* report = nullptr,
      std::vector<ServeQueryStats>* per_query = nullptr) const;

 private:
  QueryEngine() = default;

  int total_rows() const { return base_.num_rows() + delta_.num_rows(); }

  /// Physical row of a live external id, or -1.
  int FindLiveRow(int id) const;

  /// Row `row` of the segmented matrix back as a 0/1 byte vector.
  std::vector<uint8_t> RowBits(int row) const;

  /// Stage 2: ∩ sup(f_r) over the fingerprint's set bits (ascending
  /// physical rows, live rows only — the lists are maintained on mutation).
  std::vector<int> PrefilterCandidates(
      const std::vector<uint8_t>& fingerprint) const;

  /// Stage-3 subset scan across both segments (prefiltered path).
  void ScoreRows(const std::vector<uint64_t>& packed_query,
                 const std::vector<int>& rows,
                 std::vector<double>* scores) const;

  ServeOptions options_;
  FeatureMapper mapper_{GraphDatabase{}};
  PackedBitMatrix base_;   ///< sealed segment
  PackedBitMatrix delta_;  ///< append-only segment (same width as base_)
  /// tombstones_[row] = 1 iff the physical row was removed; sized to
  /// total_rows().
  std::vector<uint8_t> tombstones_;
  int num_tombstones_ = 0;
  int alive_ = 0;
  /// row_ids_[row] = stable external id; strictly increasing in row, so
  /// ranking by physical row and ranking by external id agree on ties.
  std::vector<int> row_ids_;
  int next_id_ = 0;
  /// supports_[r] = ascending physical rows of live graphs containing
  /// feature r; only populated when options_.containment_prefilter.
  std::vector<std::vector<int>> supports_;
};

}  // namespace gdim

#endif  // GDIM_SERVE_QUERY_ENGINE_H_
