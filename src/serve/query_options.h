#ifndef GDIM_SERVE_QUERY_OPTIONS_H_
#define GDIM_SERVE_QUERY_OPTIONS_H_

#include <limits>

namespace gdim {

/// Stage-2 policy for a mapped query. kAuto applies the serving engine's own
/// narrowed-vs-full fallback — the single-engine default. A sharded owner
/// instead decides ONCE over global candidate counts and forces every shard
/// onto the same side: left to their local heuristics, shards diverge from
/// the single-engine answer (a shard holding fewer than k candidates would
/// widen to a full scan of rows the single engine's narrowed scan never
/// touches). The narrowed side of the forced decision goes through
/// QueryEngine::QueryMappedCandidates with the rows the owner already
/// collected; kFull is the forced full-scan side, and also what the wire
/// protocol's MODE=full requests. kApprox (MODE=approx) trades exactness
/// for scan cost: the engine probes the `nprobe` nearest IVF centroid
/// buckets (src/index/ivf_index.h) and exact-scores only their members —
/// the answer may miss rows the probe pruned, and nothing else differs.
enum class ScanMode {
  kAuto,
  kFull,
  kApprox,
};

/// QueryOptions::nprobe value meaning "probe every bucket" (the wire's
/// NPROBE=all). Probing all buckets prunes nothing, so a kApprox query at
/// this value answers bit-identically to kFull.
inline constexpr int kNprobeAll = std::numeric_limits<int>::max();

/// Per-query knobs, threaded through every query entry point of
/// QueryEngine, ShardedEngine, and BatchExecutor — the one options struct
/// behind the former positional (k, ScanMode) parameter zoo, and the
/// extension point future per-query knobs (kernel tile hints) land in
/// without touching any signature. Construct with designated
/// initializers: engine.Query(q, {.k = 10}).
struct QueryOptions {
  /// Result count. Negative values answer like 0 (empty ranking) — one
  /// malformed request must not take down the serving process; boundary
  /// layers (tool flags, the wire parser) additionally reject them.
  int k = 0;

  /// Stage-2 scan policy; see ScanMode.
  ScanMode scan_mode = ScanMode::kAuto;

  /// kApprox only: how many IVF centroid buckets to probe, per shard.
  /// 0 picks the engine default (IvfIndex::default_nprobe); kNprobeAll
  /// probes every bucket; values above the bucket count clamp down to it.
  /// Ignored by the other scan modes (boundary layers reject NPROBE
  /// without MODE=approx so cache keys and coalescing spans stay clean).
  int nprobe = 0;

  friend bool operator==(const QueryOptions&, const QueryOptions&) = default;
};

}  // namespace gdim

#endif  // GDIM_SERVE_QUERY_OPTIONS_H_
