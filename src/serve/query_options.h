#ifndef GDIM_SERVE_QUERY_OPTIONS_H_
#define GDIM_SERVE_QUERY_OPTIONS_H_

namespace gdim {

/// Stage-2 policy for a mapped query. kAuto applies the serving engine's own
/// narrowed-vs-full fallback — the single-engine default. A sharded owner
/// instead decides ONCE over global candidate counts and forces every shard
/// onto the same side: left to their local heuristics, shards diverge from
/// the single-engine answer (a shard holding fewer than k candidates would
/// widen to a full scan of rows the single engine's narrowed scan never
/// touches). The narrowed side of the forced decision goes through
/// QueryEngine::QueryMappedCandidates with the rows the owner already
/// collected; kFull is the forced full-scan side, and also what the wire
/// protocol's MODE=full requests.
enum class ScanMode {
  kAuto,
  kFull,
};

/// Per-query knobs, threaded through every query entry point of
/// QueryEngine, ShardedEngine, and BatchExecutor — the one options struct
/// behind the former positional (k, ScanMode) parameter zoo, and the
/// extension point future per-query knobs (approximate modes, kernel tile
/// hints) land in without touching any signature. Construct with designated
/// initializers: engine.Query(q, {.k = 10}).
struct QueryOptions {
  /// Result count. Negative values answer like 0 (empty ranking) — one
  /// malformed request must not take down the serving process; boundary
  /// layers (tool flags, the wire parser) additionally reject them.
  int k = 0;

  /// Stage-2 scan policy; see ScanMode.
  ScanMode scan_mode = ScanMode::kAuto;

  friend bool operator==(const QueryOptions&, const QueryOptions&) = default;
};

}  // namespace gdim

#endif  // GDIM_SERVE_QUERY_OPTIONS_H_
