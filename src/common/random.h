#ifndef GDIM_COMMON_RANDOM_H_
#define GDIM_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace gdim {

/// Deterministic, fast PRNG (splitmix64 core). Every randomized component in
/// the library takes an explicit seed so experiments are reproducible; we do
/// not use std::mt19937 because its stream differs across standard library
/// implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t UniformU64(uint64_t bound) {
    GDIM_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    GDIM_DCHECK(lo <= hi);
    return lo + static_cast<int>(
                    UniformU64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// deterministic; speed is irrelevant here).
  double Normal();

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in selection order.
  /// Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Draws an index from a non-negative weight vector proportionally to
  /// weight. Requires at least one positive weight.
  int WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_;
};

/// n random 0/1 byte rows of width p with independent Bernoulli(density)
/// bits — a synthetic mapped database for scan tests and benches.
inline std::vector<std::vector<uint8_t>> RandomBitRows(int n, int p,
                                                       double density,
                                                       Rng* rng) {
  std::vector<std::vector<uint8_t>> rows(static_cast<size_t>(n));
  for (auto& row : rows) {
    row.resize(static_cast<size_t>(p));
    for (auto& bit : row) bit = rng->Bernoulli(density) ? 1 : 0;
  }
  return rows;
}

}  // namespace gdim

#endif  // GDIM_COMMON_RANDOM_H_
