#ifndef GDIM_COMMON_TIMER_H_
#define GDIM_COMMON_TIMER_H_

#include <chrono>

namespace gdim {

/// Monotonic wall-clock stopwatch for coarse phase timing in the bench
/// harnesses (indexing time, query time).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

  /// Microseconds elapsed, the unit of the per-stage serving histograms.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gdim

#endif  // GDIM_COMMON_TIMER_H_
