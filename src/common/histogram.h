#ifndef GDIM_COMMON_HISTOGRAM_H_
#define GDIM_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace gdim {

/// Order statistics of a latency sample set, the per-batch serving report.
/// All values carry whatever unit the samples were recorded in (the serving
/// layer records milliseconds).
struct LatencySummary {
  size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summarizes samples (copied; unordered input is fine). Percentiles use the
/// nearest-rank method; empty input yields an all-zero summary.
LatencySummary SummarizeLatencies(std::vector<double> samples);

/// "n=... mean=... p50=... p95=... p99=... max=..." with millisecond units,
/// for CLI/bench output.
std::string FormatLatencySummaryMs(const LatencySummary& summary);

}  // namespace gdim

#endif  // GDIM_COMMON_HISTOGRAM_H_
