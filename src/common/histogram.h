#ifndef GDIM_COMMON_HISTOGRAM_H_
#define GDIM_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gdim {

/// Order statistics of a latency sample set, the per-batch serving report.
/// All values carry whatever unit the samples were recorded in (the serving
/// layer records milliseconds).
struct LatencySummary {
  size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summarizes samples (copied; unordered input is fine). Percentiles use the
/// nearest-rank method; empty input yields an all-zero summary.
LatencySummary SummarizeLatencies(std::vector<double> samples);

/// "n=... mean=... p50=... p95=... p99=... max=..." with millisecond units,
/// for CLI/bench output.
std::string FormatLatencySummaryMs(const LatencySummary& summary);

/// Fixed-bucket histogram over non-negative samples: a plain value type with
/// no locking (the metric registry wraps it in atomic cells; benches and the
/// METRICS scraper use it directly). Buckets are defined by strictly
/// increasing finite upper bounds plus an implicit +Inf overflow bucket, the
/// Prometheus cumulative-histogram shape.
class BucketHistogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit BucketHistogram(std::vector<double> upper_bounds);

  /// Reconstructs a histogram from pre-binned parts: per-bucket
  /// (non-cumulative) counts including the trailing +Inf cell, plus the
  /// running sum. Used by the registry's lock-free snapshots and by the
  /// METRICS scrapers, which parse cumulative bucket lines back into this
  /// shape for quantile math. `counts` must have upper_bounds.size() + 1
  /// entries.
  BucketHistogram(std::vector<double> upper_bounds,
                  std::vector<uint64_t> counts, double sum);

  /// Adds one sample to the bucket whose range contains it (first bucket
  /// with upper bound >= value, else the overflow bucket).
  void Record(double value);

  /// Adds another histogram's counts and sum into this one. Both histograms
  /// must have identical bucket bounds; the registry uses this to fold
  /// per-shard scan histograms into the process-wide one.
  void Merge(const BucketHistogram& other);

  /// Estimated q-quantile (q in [0,1]) by linear interpolation within the
  /// containing bucket. Returns 0 when empty; samples landing in the
  /// overflow bucket are attributed to the largest finite bound.
  double Quantile(double q) const;

  /// Per-bucket (non-cumulative) counts; size is upper_bounds().size() + 1,
  /// the last entry being the +Inf overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// Running cumulative counts, one per bucket including +Inf; the last
  /// entry equals count().
  std::vector<uint64_t> CumulativeCounts() const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace gdim

#endif  // GDIM_COMMON_HISTOGRAM_H_
