#include "common/flags.h"

#include <cstdlib>

namespace gdim {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      // Assign a string temporary: GCC 12's -Wrestrict false-positives on
      // the const char* replace path at -O3.
      values_[arg.substr(2)] = std::string("1");
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

int Flags::GetInt(const std::string& key, int def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::atoi(it->second.c_str());
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second != "0" && it->second != "false";
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

bool Flags::Has(const std::string& key) const { return values_.count(key) > 0; }

}  // namespace gdim
