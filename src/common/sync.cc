#include "common/sync.h"

namespace gdim {

void CondVar::Wait(Mutex* mu) {
  // Adopt the caller-held native mutex for the wait protocol, then release
  // the unique_lock's ownership claim without unlocking — the caller's
  // MutexLock (or manual Lock) still owns the mutex, exactly as REQUIRES
  // models: held on entry, held on return.
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

}  // namespace gdim
