#include "common/logging.h"

namespace gdim {
namespace internal_logging {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "[gdim] CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace gdim
