#ifndef GDIM_COMMON_PARALLEL_H_
#define GDIM_COMMON_PARALLEL_H_

#include <functional>

namespace gdim {

/// Number of worker threads used by ParallelFor (hardware concurrency,
/// clamped to [1, 16]).
int DefaultThreadCount();

/// Runs fn(i) for i in [begin, end) across a transient pool of threads.
///
/// Work is handed out in dynamic chunks via an atomic cursor, so uneven item
/// costs (e.g. MCS pairs) balance well. fn must be thread-safe with respect
/// to distinct i. Falls back to a serial loop when the range is small or
/// threads == 1.
///
/// Clang's thread-safety analysis (common/sync.h) does not see through the
/// std::function boundary: fn bodies are analyzed as standalone functions,
/// so capabilities held by the caller do not carry into fn. Don't touch
/// GDIM_GUARDED_BY state inside fn without locking there.
void ParallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int threads = 0);

/// Runs fn(i) for i in [0, n) with per-item threads and NO serial-fallback
/// threshold — the scatter primitive for fanning one query out over a
/// handful of shards, where n is far below ParallelFor's chunking range but
/// each item is itself a heavy scan. Spawns min(threads, n) threads
/// (threads == 0 means DefaultThreadCount()); threads == 1 or n == 1 runs
/// serial. fn must be thread-safe with respect to distinct i.
void ParallelScatter(int n, const std::function<void(int)>& fn,
                     int threads = 0);

}  // namespace gdim

#endif  // GDIM_COMMON_PARALLEL_H_
