#ifndef GDIM_COMMON_LOGGING_H_
#define GDIM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gdim {
namespace internal_logging {

/// Prints the failure message and aborts. Used by the CHECK macros; kept
/// out-of-line so the fast path stays small.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

/// Stream sink that aggregates `<<`-ed context for CHECK failure messages.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }
  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace gdim

/// Internal invariant check: always on (benchmark-safe: the conditions used on
/// hot paths are cheap). Usage: GDIM_CHECK(x > 0) << "context " << x;
#define GDIM_CHECK(cond)                                                   \
  if (cond) {                                                              \
  } else /* NOLINT: the empty-if/else is the macro's dangling-else guard */ \
    ::gdim::internal_logging::CheckMessageBuilder(__FILE__, __LINE__, #cond)

/// Debug-only check, compiled out in release builds.
#ifdef NDEBUG
#define GDIM_DCHECK(cond) GDIM_CHECK(true || (cond))
#else
#define GDIM_DCHECK(cond) GDIM_CHECK(cond)
#endif

#endif  // GDIM_COMMON_LOGGING_H_
