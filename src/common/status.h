#ifndef GDIM_COMMON_STATUS_H_
#define GDIM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace gdim {

/// Error categories used across the library. Mirrors the Status idiom of
/// production database codebases (Arrow, RocksDB): fallible public entry
/// points return a Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kParseError,
  kResourceExhausted,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// Ok statuses carry no allocation; error statuses carry a code and message.
/// Typical use:
///
///   Status s = WriteGraphFile(path, db);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value: the return type for fallible constructors/parsers.
///
///   Result<GraphDatabase> r = ReadGraphFile(path);
///   if (!r.ok()) return r.status();
///   GraphDatabase db = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_T;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::IoError(...)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors mirror std::optional.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;  // kOk iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace gdim

#endif  // GDIM_COMMON_STATUS_H_
