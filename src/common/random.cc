#include "common/random.h"

#include <cmath>

namespace gdim {

double Rng::Normal() {
  // Box–Muller; discard the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  GDIM_CHECK(k >= 0 && k <= n) << "k=" << k << " n=" << n;
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  std::vector<int> out;
  out.reserve(k);
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformU64(static_cast<uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

int Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    GDIM_DCHECK(w >= 0);
    total += w;
  }
  GDIM_CHECK(total > 0) << "WeightedIndex needs a positive weight";
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace gdim
