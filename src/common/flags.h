#ifndef GDIM_COMMON_FLAGS_H_
#define GDIM_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace gdim {

/// Minimal --key=value command-line parsing shared by the bench harnesses
/// and the CLI tool. Bare "--flag" parses as "1"; non-flag arguments are
/// collected as positionals.
class Flags {
 public:
  Flags(int argc, char** argv);

  int GetInt(const std::string& key, int def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;
  std::string GetString(const std::string& key, const std::string& def) const;
  bool Has(const std::string& key) const;

  /// Non-flag arguments in order (argv[0] excluded).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gdim

#endif  // GDIM_COMMON_FLAGS_H_
