#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace gdim {

int DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) hc = 1;
  return static_cast<int>(std::min(hc, 16u));
}

void ParallelFor(int begin, int end, const std::function<void(int)>& fn,
                 int threads) {
  if (end <= begin) return;
  if (threads <= 0) threads = DefaultThreadCount();
  const int range = end - begin;
  if (threads == 1 || range < 64) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }
  threads = std::min(threads, range);
  // Small chunks keep load balanced when item costs vary (MCS pairs).
  const int chunk = std::max(1, range / (threads * 8));
  std::atomic<int> cursor{begin};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&cursor, &fn, end, chunk]() {
      for (;;) {
        int lo = cursor.fetch_add(chunk);
        if (lo >= end) return;
        int hi = std::min(lo + chunk, end);
        for (int i = lo; i < hi; ++i) fn(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

void ParallelScatter(int n, const std::function<void(int)>& fn, int threads) {
  if (n <= 0) return;
  if (threads <= 0) threads = DefaultThreadCount();
  threads = std::min(threads, n);
  if (threads == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> cursor{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&cursor, &fn, n]() {
      for (;;) {
        const int i = cursor.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace gdim
