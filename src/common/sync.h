#ifndef GDIM_COMMON_SYNC_H_
#define GDIM_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety annotations.
//
// These macros expand to Clang's capability attributes under Clang and to
// nothing elsewhere, so GCC builds are unaffected while any Clang build (the
// CI thread-safety job compiles with -Wthread-safety -Werror=thread-safety)
// turns every locking contract below into a compile error when violated.
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define GDIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GDIM_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a capability (a lock, or a logical resource such as a
/// thread role). The string names the capability kind in diagnostics.
#define GDIM_CAPABILITY(x) GDIM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability.
#define GDIM_SCOPED_CAPABILITY GDIM_THREAD_ANNOTATION(scoped_lockable)

/// Data members: reads/writes require holding the named capability.
#define GDIM_GUARDED_BY(x) GDIM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: dereferences require holding the named capability (the
/// pointer itself may be read freely).
#define GDIM_PT_GUARDED_BY(x) GDIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: the caller must hold the capability (exclusively / shared).
#define GDIM_REQUIRES(...) \
  GDIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GDIM_REQUIRES_SHARED(...) \
  GDIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire / release the capability (no argument: `this`).
#define GDIM_ACQUIRE(...) \
  GDIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GDIM_RELEASE(...) \
  GDIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GDIM_TRY_ACQUIRE(...) \
  GDIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Functions: the caller must NOT hold the capability (deadlock guard for
/// public entry points of self-locking classes).
#define GDIM_EXCLUDES(...) GDIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Functions: assert (without acquiring) that the capability is held — the
/// escape hatch for invariants the analysis cannot see, e.g. "this object is
/// owned exclusively by an object whose role is already held". Every use
/// must carry an inline justification (enforced by tools/check_invariants.py
/// for the NO_THREAD_SAFETY_ANALYSIS spelling; reviewers hold Assert() to
/// the same bar).
#define GDIM_ASSERT_CAPABILITY(x) GDIM_THREAD_ANNOTATION(assert_capability(x))

/// Accessor functions that return a capability, so `obj->role()` in a
/// REQUIRES clause resolves to the same capability as `role_` inside the
/// class.
#define GDIM_RETURN_CAPABILITY(x) GDIM_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function. Last resort; every use must
/// carry an inline `// justification:` comment (tools/check_invariants.py
/// rejects bare uses).
#define GDIM_NO_THREAD_SAFETY_ANALYSIS \
  GDIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gdim {

/// The project mutex: std::mutex wearing the capability annotations, so
/// `GDIM_GUARDED_BY(mu_)` members and `GDIM_REQUIRES(mu_)` helpers are
/// compiler-checked. Raw std::mutex / std::lock_guard / std::unique_lock are
/// banned outside this header (tools/check_invariants.py) — unannotated
/// locking is invisible to the analysis and rots back into prose contracts.
class GDIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GDIM_ACQUIRE() { mu_.lock(); }
  void Unlock() GDIM_RELEASE() { mu_.unlock(); }
  bool TryLock() GDIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex; the project replacement for std::lock_guard /
/// std::unique_lock. Scoped: the analysis knows the capability is held from
/// construction to the end of the enclosing block.
class GDIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GDIM_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() GDIM_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable working with Mutex. Wait() requires the mutex held —
/// checked — and, like std::condition_variable, releases it for the wait and
/// reacquires before returning (the lock set is unchanged across the call,
/// which is exactly what REQUIRES models).
///
/// Prefer the explicit-loop form at call sites whose predicate reads guarded
/// members:
///
///   MutexLock lock(&mu_);
///   while (!done_) cv_.Wait(&mu_);
///
/// The analysis checks lambda bodies as separate functions, so a predicate
/// lambda reading guarded state would need its own annotations; an inline
/// while loop keeps the accesses inside the function that holds the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; may wake spuriously (callers loop).
  void Wait(Mutex* mu) GDIM_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability with no runtime state: a *role* a thread plays, e.g. "the
/// engine's single writer". Single-writer contracts that used to live in
/// prose ("mutations are not thread-safe: callers must serialize them onto
/// one thread") become checked REQUIRES clauses: the owning thread acquires
/// the role once (a no-op at runtime) and every mutating method demands it.
/// See ShardedEngine::writer_role() for the canonical use.
class GDIM_CAPABILITY("role") ThreadRole {
 public:
  /// Copyable/movable (unlike a real lock) so that role-carrying objects —
  /// engines returned by value, generation swaps — keep their value
  /// semantics: a role has no runtime state, and its capability identity is
  /// the *expression* naming it, which copying does not disturb.
  ThreadRole() = default;

  /// Claims / relinquishes the role. No-ops at runtime; the value is the
  /// REQUIRES checking they enable. Dynamic enforcement of "exactly one
  /// holder" stays with TSan, which sees the underlying accesses.
  void Acquire() GDIM_ACQUIRE() {}
  void Release() GDIM_RELEASE() {}

  /// Tells the analysis the role is held here without acquiring it — for
  /// objects owned exclusively by a holder of an enclosing role (e.g. the
  /// shards inside a ShardedEngine). Use with an inline justification.
  void Assert() GDIM_ASSERT_CAPABILITY(this) {}
};

/// RAII role holder for straight-line owners: tests, benchmarks, and tools
/// that drive an engine from a single thread scope.
class GDIM_SCOPED_CAPABILITY ScopedRole {
 public:
  explicit ScopedRole(ThreadRole* role) GDIM_ACQUIRE(role) : role_(role) {
    role_->Acquire();
  }
  ~ScopedRole() GDIM_RELEASE() { role_->Release(); }

  ScopedRole(const ScopedRole&) = delete;
  ScopedRole& operator=(const ScopedRole&) = delete;

 private:
  ThreadRole* const role_;
};

}  // namespace gdim

#endif  // GDIM_COMMON_SYNC_H_
