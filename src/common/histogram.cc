#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gdim {

namespace {

double NearestRank(const std::vector<double>& sorted, double q) {
  // Nearest-rank percentile: smallest sample with cumulative frequency >= q.
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = NearestRank(samples, 0.50);
  s.p95 = NearestRank(samples, 0.95);
  s.p99 = NearestRank(samples, 0.99);
  s.max = samples.back();
  return s;
}

std::string FormatLatencySummaryMs(const LatencySummary& summary) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
                "max=%.3fms",
                summary.count, summary.mean, summary.p50, summary.p95,
                summary.p99, summary.max);
  return std::string(buf);
}

}  // namespace gdim
