#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gdim {

namespace {

double NearestRank(const std::vector<double>& sorted, double q) {
  // Nearest-rank percentile: smallest sample with cumulative frequency >= q.
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = NearestRank(samples, 0.50);
  s.p95 = NearestRank(samples, 0.95);
  s.p99 = NearestRank(samples, 0.99);
  s.max = samples.back();
  return s;
}

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds,
                                 std::vector<uint64_t> counts, double sum)
    : bounds_(std::move(upper_bounds)),
      counts_(std::move(counts)),
      sum_(sum) {
  counts_.resize(bounds_.size() + 1, 0);
  for (uint64_t c : counts_) count_ += c;
}

void BucketHistogram::Record(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += value;
}

void BucketHistogram::Merge(const BucketHistogram& other) {
  // Mismatched layouts would silently mis-bin; the registry only merges
  // histograms it created with one shared bounds vector.
  if (other.bounds_ != bounds_) return;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

double BucketHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= rank && counts_[i] > 0) {
      if (i >= bounds_.size()) {
        // Overflow bucket has no finite upper edge; report the largest
        // finite bound rather than inventing a value.
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lower = (i == 0) ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const uint64_t below = cumulative - counts_[i];
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(counts_[i]);
      return lower + (upper - lower) * std::min(std::max(frac, 0.0), 1.0);
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<uint64_t> BucketHistogram::CumulativeCounts() const {
  std::vector<uint64_t> cumulative(counts_.size(), 0);
  uint64_t running = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    cumulative[i] = running;
  }
  return cumulative;
}

std::string FormatLatencySummaryMs(const LatencySummary& summary) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
                "max=%.3fms",
                summary.count, summary.mean, summary.p50, summary.p95,
                summary.p99, summary.max);
  return std::string(buf);
}

}  // namespace gdim
