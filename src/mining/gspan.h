#ifndef GDIM_MINING_GSPAN_H_
#define GDIM_MINING_GSPAN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "mining/dfs_code.h"

namespace gdim {

/// Parameters of frequent subgraph mining.
struct MiningOptions {
  /// Minimum support as a fraction τ of |DG| (paper default 5%). A pattern f
  /// is frequent iff |sup(f)| >= ceil(τ · n). Ignored if
  /// min_support_count > 0.
  double min_support = 0.05;

  /// Absolute minimum support count; overrides min_support when > 0.
  int min_support_count = 0;

  /// Maximum pattern size in edges (size-bounded mining, as in gIndex);
  /// keeps the candidate feature set F moderate.
  int max_edges = 7;

  /// Safety cap on the number of reported patterns; 0 = unlimited.
  int max_patterns = 0;
};

/// A mined frequent connected subgraph with its support set.
struct FrequentPattern {
  /// The pattern graph (vertex ids are DFS discovery ids).
  Graph graph;
  /// Canonical (minimum) DFS code.
  DfsCode code;
  /// Sorted ids (positions in DG) of the database graphs containing it.
  std::vector<int> support;

  double Frequency(int db_size) const {
    return db_size == 0 ? 0.0
                        : static_cast<double>(support.size()) / db_size;
  }
};

/// Mines all frequent connected subgraphs of db (with at least one edge, at
/// most options.max_edges edges) using gSpan: canonical DFS codes with
/// minimality pruning and rightmost-path extension over projected embedding
/// lists. Deterministic output order (DFS-lexicographic).
///
/// Fails with InvalidArgument for nonsensical options.
Result<std::vector<FrequentPattern>> MineFrequentSubgraphs(
    const GraphDatabase& db, const MiningOptions& options = {});

}  // namespace gdim

#endif  // GDIM_MINING_GSPAN_H_
