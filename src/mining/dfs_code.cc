#include "mining/dfs_code.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "common/logging.h"

namespace gdim {

std::string DfsEdge::ToString() const {
  std::ostringstream os;
  os << "(" << from << "," << to << "," << from_label << "," << edge_label
     << "," << to_label << ")";
  return os.str();
}

bool ExtensionLess(const DfsEdge& a, const DfsEdge& b) {
  const bool af = a.IsForward();
  const bool bf = b.IsForward();
  if (!af && !bf) {  // both backward: same `from` (the rightmost vertex)
    if (a.to != b.to) return a.to < b.to;
    return a.edge_label < b.edge_label;
  }
  if (af && bf) {  // both forward: same `to` (the next DFS id)
    if (a.from != b.from) return a.from > b.from;
    return std::tie(a.from_label, a.edge_label, a.to_label) <
           std::tie(b.from_label, b.edge_label, b.to_label);
  }
  return !af;  // backward ≺ forward
}

Graph CodeToGraph(const DfsCode& code) {
  Graph g;
  // Collect labels first (ids appear in increasing order for forward edges).
  int max_id = -1;
  for (const DfsEdge& e : code) max_id = std::max({max_id, e.from, e.to});
  std::vector<int> labels(static_cast<size_t>(max_id + 1), -1);
  for (const DfsEdge& e : code) {
    if (labels[static_cast<size_t>(e.from)] < 0) {
      labels[static_cast<size_t>(e.from)] = e.from_label;
    }
    if (labels[static_cast<size_t>(e.to)] < 0) {
      labels[static_cast<size_t>(e.to)] = e.to_label;
    }
  }
  for (int i = 0; i <= max_id; ++i) {
    GDIM_CHECK(labels[static_cast<size_t>(i)] >= 0)
        << "DFS code never labels vertex " << i;
    g.AddVertex(static_cast<LabelId>(labels[static_cast<size_t>(i)]));
  }
  for (const DfsEdge& e : code) {
    g.AddEdge(e.from, e.to, static_cast<LabelId>(e.edge_label));
  }
  return g;
}

std::vector<int> RightmostPath(const DfsCode& code) {
  std::vector<int> rmpath;
  int target = -1;  // rightmost vertex; walk forward edges backwards
  for (int i = static_cast<int>(code.size()) - 1; i >= 0; --i) {
    const DfsEdge& e = code[static_cast<size_t>(i)];
    if (!e.IsForward()) continue;
    if (target < 0 || e.to == target) {
      rmpath.push_back(i);
      target = e.from;
    }
  }
  std::reverse(rmpath.begin(), rmpath.end());
  return rmpath;
}

namespace {

// Embedding of a partial DFS code onto the pattern graph itself, used by the
// minimality check. Each step stores the graph edge used and its orientation.
struct SelfEmbedding {
  int gu = 0;    // image of the code edge's `from`
  int gv = 0;    // image of the code edge's `to`
  int edge = 0;  // pattern edge id
  int prev = -1;
};

struct SelfHistory {
  std::vector<bool> edge_used;
  std::vector<int> image;  // DFS id -> pattern vertex (-1 if none)
  std::vector<int> preimage;  // pattern vertex -> DFS id (-1 if none)
};

// Rebuilds history by walking the prev chain. ids: number of DFS ids so far.
SelfHistory BuildHistory(const Graph& g, const std::vector<std::vector<SelfEmbedding>>& arenas,
                         const DfsCode& code, int last_step, int emb_index) {
  SelfHistory h;
  h.edge_used.assign(static_cast<size_t>(g.NumEdges()), false);
  int max_id = 0;
  for (const DfsEdge& e : code) max_id = std::max({max_id, e.from, e.to});
  h.image.assign(static_cast<size_t>(max_id + 1), -1);
  h.preimage.assign(static_cast<size_t>(g.NumVertices()), -1);
  int step = last_step;
  int idx = emb_index;
  while (step >= 0) {
    const SelfEmbedding& emb = arenas[static_cast<size_t>(step)][static_cast<size_t>(idx)];
    h.edge_used[static_cast<size_t>(emb.edge)] = true;
    const DfsEdge& ce = code[static_cast<size_t>(step)];
    h.image[static_cast<size_t>(ce.from)] = emb.gu;
    h.image[static_cast<size_t>(ce.to)] = emb.gv;
    h.preimage[static_cast<size_t>(emb.gu)] = ce.from;
    h.preimage[static_cast<size_t>(emb.gv)] = ce.to;
    idx = emb.prev;
    --step;
  }
  return h;
}

}  // namespace

bool IsMinimalDfsCode(const DfsCode& code) {
  if (code.empty()) return true;
  const Graph g = CodeToGraph(code);

  // Step 0: the minimal single-edge tuple over all edges of g.
  DfsEdge min0;
  bool have0 = false;
  for (const Edge& e : g.edges()) {
    for (int dir = 0; dir < 2; ++dir) {
      int a = dir == 0 ? e.u : e.v;
      int b = dir == 0 ? e.v : e.u;
      DfsEdge cand{0, 1, static_cast<int>(g.VertexLabel(a)),
                   static_cast<int>(e.label),
                   static_cast<int>(g.VertexLabel(b))};
      if (!have0 || std::tie(cand.from_label, cand.edge_label, cand.to_label) <
                        std::tie(min0.from_label, min0.edge_label,
                                 min0.to_label)) {
        min0 = cand;
        have0 = true;
      }
    }
  }
  if (std::tie(min0.from_label, min0.edge_label, min0.to_label) !=
      std::tie(code[0].from_label, code[0].edge_label, code[0].to_label)) {
    return false;  // the minimal code starts with a strictly smaller tuple
  }

  // Arena of embeddings per step; grow the minimal code greedily.
  std::vector<std::vector<SelfEmbedding>> arenas(code.size());
  for (const Edge& e : g.edges()) {
    for (int dir = 0; dir < 2; ++dir) {
      int a = dir == 0 ? e.u : e.v;
      int b = dir == 0 ? e.v : e.u;
      if (static_cast<int>(g.VertexLabel(a)) == min0.from_label &&
          static_cast<int>(e.label) == min0.edge_label &&
          static_cast<int>(g.VertexLabel(b)) == min0.to_label) {
        EdgeId eid = g.FindEdge(a, b);
        arenas[0].push_back(SelfEmbedding{a, b, eid, -1});
      }
    }
  }

  DfsCode min_code{min0};
  for (size_t step = 1; step < code.size(); ++step) {
    std::vector<int> rmpath = RightmostPath(min_code);
    int max_id = 0;
    for (const DfsEdge& e : min_code) {
      max_id = std::max({max_id, e.from, e.to});
    }
    const int rm_vertex =
        min_code[static_cast<size_t>(rmpath.back())].to;  // rightmost DFS id

    DfsEdge best;
    bool have_best = false;
    std::vector<SelfEmbedding> best_embs;

    const auto& prev_arena = arenas[step - 1];
    for (size_t idx = 0; idx < prev_arena.size(); ++idx) {
      SelfHistory h =
          BuildHistory(g, arenas, min_code, static_cast<int>(step) - 1,
                       static_cast<int>(idx));
      int rm_image = h.image[static_cast<size_t>(rm_vertex)];
      // Backward extensions: rightmost vertex -> vertex on rmpath.
      for (const AdjEntry& adj :
           g.Neighbors(static_cast<VertexId>(rm_image))) {
        if (h.edge_used[static_cast<size_t>(adj.edge)]) continue;
        int pre = h.preimage[static_cast<size_t>(adj.neighbor)];
        if (pre < 0) continue;  // forward handled below
        // Only rmpath vertices produce valid backward growth.
        bool on_rmpath = false;
        for (int pos : rmpath) {
          if (min_code[static_cast<size_t>(pos)].from == pre ||
              min_code[static_cast<size_t>(pos)].to == pre) {
            on_rmpath = true;
            break;
          }
        }
        if (!on_rmpath || pre == rm_vertex) continue;
        DfsEdge cand{rm_vertex, pre,
                     static_cast<int>(g.VertexLabel(
                         static_cast<VertexId>(rm_image))),
                     static_cast<int>(adj.edge_label),
                     static_cast<int>(g.VertexLabel(adj.neighbor))};
        if (!have_best || ExtensionLess(cand, best)) {
          best = cand;
          have_best = true;
          best_embs.clear();
        }
        if (cand == best) {
          best_embs.push_back(SelfEmbedding{rm_image, adj.neighbor,
                                            adj.edge,
                                            static_cast<int>(idx)});
        }
      }
      // Forward extensions from every vertex on the rightmost path.
      std::vector<int> rm_ids;
      rm_ids.push_back(min_code[static_cast<size_t>(rmpath.front())].from);
      for (int pos : rmpath) {
        rm_ids.push_back(min_code[static_cast<size_t>(pos)].to);
      }
      for (auto it = rm_ids.rbegin(); it != rm_ids.rend(); ++it) {
        int from_id = *it;
        int from_image = h.image[static_cast<size_t>(from_id)];
        for (const AdjEntry& adj :
             g.Neighbors(static_cast<VertexId>(from_image))) {
          if (h.preimage[static_cast<size_t>(adj.neighbor)] >= 0) continue;
          DfsEdge cand{from_id, max_id + 1,
                       static_cast<int>(g.VertexLabel(
                           static_cast<VertexId>(from_image))),
                       static_cast<int>(adj.edge_label),
                       static_cast<int>(g.VertexLabel(adj.neighbor))};
          if (!have_best || ExtensionLess(cand, best)) {
            best = cand;
            have_best = true;
            best_embs.clear();
          }
          if (cand == best) {
            best_embs.push_back(SelfEmbedding{from_image, adj.neighbor,
                                              adj.edge,
                                              static_cast<int>(idx)});
          }
        }
      }
    }
    GDIM_CHECK(have_best) << "valid DFS code must admit an extension";
    const DfsEdge& expected = code[step];
    // Compare with the given code's edge at this position.
    if (best.from != expected.from || best.to != expected.to ||
        std::tie(best.from_label, best.edge_label, best.to_label) !=
            std::tie(expected.from_label, expected.edge_label,
                     expected.to_label)) {
      // The greedy minimal code diverges; it is strictly smaller iff its
      // edge is smaller, which must be the case since `code` is valid.
      return false;
    }
    arenas[step] = std::move(best_embs);
    min_code.push_back(best);
  }
  return true;
}

}  // namespace gdim
