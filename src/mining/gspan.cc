#include "mining/gspan.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "common/logging.h"

namespace gdim {

namespace {

// One step of an embedding of the current DFS code into a database graph.
// Steps form chains via prev (index into the previous step's arena).
struct Emb {
  int gid = 0;   // database graph index
  int gu = 0;    // image of the code edge's `from`
  int gv = 0;    // image of the code edge's `to`
  int edge = 0;  // edge id within the database graph
  int prev = -1;
};

// History of one embedding chain: used edges and the DFS-id <-> graph-vertex
// correspondence, rebuilt by walking prev pointers.
struct History {
  std::vector<bool> edge_used;
  std::vector<int> image;     // DFS id -> graph vertex, -1 if none
  std::vector<int> preimage;  // graph vertex -> DFS id, -1 if none
};

// Comparator giving extensions a deterministic DFS-lexicographic order.
struct ExtensionOrder {
  bool operator()(const DfsEdge& a, const DfsEdge& b) const {
    return ExtensionLess(a, b);
  }
};

class GSpanMiner {
 public:
  GSpanMiner(const GraphDatabase& db, const MiningOptions& options)
      : db_(db), options_(options) {
    min_count_ =
        options.min_support_count > 0
            ? options.min_support_count
            : std::max(1, static_cast<int>(std::ceil(
                              options.min_support * db.size() - 1e-9)));
  }

  std::vector<FrequentPattern> Mine() {
    // Frequent single-edge seeds, keyed by canonical (lu, le, lv) triple
    // with lu <= lv.
    std::map<std::tuple<int, int, int>, std::vector<Emb>> seeds;
    std::map<std::tuple<int, int, int>, std::set<int>> seed_support;
    for (int gid = 0; gid < static_cast<int>(db_.size()); ++gid) {
      const Graph& g = db_[static_cast<size_t>(gid)];
      for (const Edge& e : g.edges()) {
        int lu = static_cast<int>(g.VertexLabel(e.u));
        int lv = static_cast<int>(g.VertexLabel(e.v));
        int le = static_cast<int>(e.label);
        auto key = std::make_tuple(std::min(lu, lv), le, std::max(lu, lv));
        seed_support[key].insert(gid);
        // Both orientations when the tuple is used as code (0,1,a,e,b) with
        // a = min label: the embedding fixes which endpoint plays DFS id 0.
        EdgeId eid = g.FindEdge(e.u, e.v);
        if (lu == std::min(lu, lv)) {
          seeds[key].push_back(Emb{gid, e.u, e.v, eid, -1});
        }
        if (lv == std::min(lu, lv)) {
          seeds[key].push_back(Emb{gid, e.v, e.u, eid, -1});
        }
      }
    }
    for (auto& [key, support] : seed_support) {
      if (static_cast<int>(support.size()) < min_count_) continue;
      auto [lu, le, lv] = key;
      DfsCode code{DfsEdge{0, 1, lu, le, lv}};
      arenas_.assign(1, std::move(seeds[key]));
      Grow(code);
      if (Full()) break;
    }
    return std::move(results_);
  }

 private:
  bool Full() const {
    return options_.max_patterns > 0 &&
           static_cast<int>(results_.size()) >= options_.max_patterns;
  }

  History BuildHistory(const DfsCode& code, int step, int idx) const {
    History h;
    const int gid = arenas_[static_cast<size_t>(step)]
                           [static_cast<size_t>(idx)].gid;
    const Graph& g = db_[static_cast<size_t>(gid)];
    h.edge_used.assign(static_cast<size_t>(g.NumEdges()), false);
    int max_id = 0;
    for (const DfsEdge& e : code) max_id = std::max({max_id, e.from, e.to});
    h.image.assign(static_cast<size_t>(max_id + 1), -1);
    h.preimage.assign(static_cast<size_t>(g.NumVertices()), -1);
    int s = step, i = idx;
    while (s >= 0) {
      const Emb& emb = arenas_[static_cast<size_t>(s)][static_cast<size_t>(i)];
      h.edge_used[static_cast<size_t>(emb.edge)] = true;
      const DfsEdge& ce = code[static_cast<size_t>(s)];
      h.image[static_cast<size_t>(ce.from)] = emb.gu;
      h.image[static_cast<size_t>(ce.to)] = emb.gv;
      h.preimage[static_cast<size_t>(emb.gu)] = ce.from;
      h.preimage[static_cast<size_t>(emb.gv)] = ce.to;
      i = emb.prev;
      --s;
    }
    return h;
  }

  // Recursive gSpan growth. arenas_[k] holds all embeddings of code[0..k].
  void Grow(DfsCode& code) {
    if (!IsMinimalDfsCode(code)) return;
    Record(code);
    if (Full()) return;
    if (static_cast<int>(code.size()) >= options_.max_edges) return;

    const std::vector<int> rmpath = RightmostPath(code);
    int max_id = 0;
    for (const DfsEdge& e : code) max_id = std::max({max_id, e.from, e.to});
    const int rm_vertex = code[static_cast<size_t>(rmpath.back())].to;
    std::vector<int> rm_ids;  // DFS ids along the rightmost path, root first
    rm_ids.push_back(code[static_cast<size_t>(rmpath.front())].from);
    for (int pos : rmpath) {
      rm_ids.push_back(code[static_cast<size_t>(pos)].to);
    }

    std::map<DfsEdge, std::vector<Emb>, ExtensionOrder> extensions;
    const int step = static_cast<int>(code.size()) - 1;
    const auto& arena = arenas_[static_cast<size_t>(step)];
    for (int idx = 0; idx < static_cast<int>(arena.size()); ++idx) {
      const int gid = arena[static_cast<size_t>(idx)].gid;
      const Graph& g = db_[static_cast<size_t>(gid)];
      History h = BuildHistory(code, step, idx);
      const int rm_image = h.image[static_cast<size_t>(rm_vertex)];

      // Backward extensions: rightmost vertex to a rightmost-path vertex.
      for (const AdjEntry& adj :
           g.Neighbors(static_cast<VertexId>(rm_image))) {
        if (h.edge_used[static_cast<size_t>(adj.edge)]) continue;
        int pre = h.preimage[static_cast<size_t>(adj.neighbor)];
        if (pre < 0 || pre == rm_vertex) continue;
        bool on_rmpath =
            std::find(rm_ids.begin(), rm_ids.end(), pre) != rm_ids.end();
        if (!on_rmpath) continue;
        DfsEdge ext{rm_vertex, pre,
                    static_cast<int>(g.VertexLabel(
                        static_cast<VertexId>(rm_image))),
                    static_cast<int>(adj.edge_label),
                    static_cast<int>(g.VertexLabel(adj.neighbor))};
        extensions[ext].push_back(
            Emb{gid, rm_image, adj.neighbor, adj.edge, idx});
      }
      // Forward extensions from every rightmost-path vertex.
      for (int from_id : rm_ids) {
        int from_image = h.image[static_cast<size_t>(from_id)];
        for (const AdjEntry& adj :
             g.Neighbors(static_cast<VertexId>(from_image))) {
          if (h.preimage[static_cast<size_t>(adj.neighbor)] >= 0) continue;
          DfsEdge ext{from_id, max_id + 1,
                      static_cast<int>(g.VertexLabel(
                          static_cast<VertexId>(from_image))),
                      static_cast<int>(adj.edge_label),
                      static_cast<int>(g.VertexLabel(adj.neighbor))};
          extensions[ext].push_back(
              Emb{gid, from_image, adj.neighbor, adj.edge, idx});
        }
      }
    }

    for (auto& [ext, embs] : extensions) {
      // Support = number of distinct database graphs in the embedding list.
      int support = CountDistinctGraphs(embs);
      if (support < min_count_) continue;
      code.push_back(ext);
      arenas_.push_back(std::move(embs));
      Grow(code);
      arenas_.pop_back();
      code.pop_back();
      if (Full()) return;
    }
  }

  static int CountDistinctGraphs(const std::vector<Emb>& embs) {
    int count = 0;
    int last = -1;
    // Embeddings are appended in gid order (the arena scan is gid-ordered),
    // so distinct gids are consecutive runs.
    for (const Emb& e : embs) {
      if (e.gid != last) {
        ++count;
        last = e.gid;
      }
    }
    return count;
  }

  void Record(const DfsCode& code) {
    FrequentPattern p;
    p.code = code;
    p.graph = CodeToGraph(code);
    const auto& arena = arenas_.back();
    int last = -1;
    for (const Emb& e : arena) {
      if (e.gid != last) {
        p.support.push_back(e.gid);
        last = e.gid;
      }
    }
    results_.push_back(std::move(p));
  }

  const GraphDatabase& db_;
  MiningOptions options_;
  int min_count_ = 1;
  std::vector<std::vector<Emb>> arenas_;
  std::vector<FrequentPattern> results_;
};

}  // namespace

Result<std::vector<FrequentPattern>> MineFrequentSubgraphs(
    const GraphDatabase& db, const MiningOptions& options) {
  if (options.min_support <= 0.0 || options.min_support > 1.0) {
    if (options.min_support_count <= 0) {
      return Status::InvalidArgument(
          "min_support must be in (0,1] or min_support_count > 0");
    }
  }
  if (options.max_edges < 1) {
    return Status::InvalidArgument("max_edges must be >= 1");
  }
  GSpanMiner miner(db, options);
  return miner.Mine();
}

}  // namespace gdim
