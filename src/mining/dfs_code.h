#ifndef GDIM_MINING_DFS_CODE_H_
#define GDIM_MINING_DFS_CODE_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace gdim {

/// One entry of a gSpan DFS code: an edge (from, to) between DFS discovery
/// ids, annotated with the vertex/edge labels. Forward edges have
/// from < to (to is a newly discovered vertex); backward edges have
/// from > to.
struct DfsEdge {
  int from = 0;
  int to = 0;
  int from_label = 0;
  int edge_label = 0;
  int to_label = 0;

  bool IsForward() const { return from < to; }

  friend bool operator==(const DfsEdge& a, const DfsEdge& b) = default;

  /// "(0,1,2,0,3)" for debugging.
  std::string ToString() const;
};

/// A DFS code: the sequence of edges in DFS discovery order.
using DfsCode = std::vector<DfsEdge>;

/// gSpan's DFS-lexicographic order on two *extension* edges of the same code
/// (both grown from the same rightmost path). Returns true iff a ≺ b.
///
/// Rules (gSpan, Yan & Han ICDM'02):
///  - both backward: smaller `to` first, then smaller edge label;
///  - both forward: larger `from` first (deeper on the rightmost path), then
///    smaller labels;
///  - backward precedes forward.
bool ExtensionLess(const DfsEdge& a, const DfsEdge& b);

/// Reconstructs the pattern graph from a DFS code. Vertex i of the result is
/// DFS id i.
Graph CodeToGraph(const DfsCode& code);

/// Positions (indices into code) of the forward edges forming the rightmost
/// path, ordered from the root down to the rightmost vertex.
std::vector<int> RightmostPath(const DfsCode& code);

/// True iff code is the canonical (minimum) DFS code of its pattern graph.
/// Implemented by greedily constructing the minimal code of CodeToGraph(code)
/// and comparing step by step.
bool IsMinimalDfsCode(const DfsCode& code);

}  // namespace gdim

#endif  // GDIM_MINING_DFS_CODE_H_
