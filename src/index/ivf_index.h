#ifndef GDIM_INDEX_IVF_INDEX_H_
#define GDIM_INDEX_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/packed_bits.h"

namespace gdim {

/// Seed of the deterministic medoid sample. Fixed (not a knob): two builds
/// over the same rows must agree bit for bit, or the sharded engine's
/// "fresh build answers identically" contracts stop holding for approx
/// queries.
inline constexpr uint64_t kIvfSeed = 0x91f5eedcafef00dULL;

/// An IVF-style (inverted-file) coarse partition over packed fingerprint
/// rows: k-medoid-style centroid buckets under Hamming distance, each
/// holding the ascending physical rows assigned to it. The approximate scan
/// mode (QueryOptions ScanMode::kApprox) probes the NPROBE nearest
/// centroids and exact-scores only their members, pruning per-query cost
/// from all live rows to roughly nprobe/num_buckets of them.
///
/// Build is seeded-deterministic (kIvfSeed): a medoid sample of the rows,
/// refined by two Hamming-median (bitwise majority) rounds, then one final
/// assignment pass. Identical rows in → identical buckets and postings out,
/// which is what lets a generation swap rebuild the index with no
/// observable divergence from a from-scratch engine.
///
/// Maintenance is incremental and cheap: AddRow assigns a new row to its
/// nearest centroid (rows only grow, so posting lists stay sorted), removal
/// is handled lazily — Probe() skips tombstoned rows — and Compact prunes
/// and renumbers the postings through its monotone old→new row map.
/// Centroids are only re-selected by a full rebuild (engine construction /
/// generation swap), never by maintenance.
///
/// Thread-compatibility contract: the index is owned by a QueryEngine and
/// externally synchronized by it — every mutating call happens inside an
/// engine method that REQUIRES the engine's writer role, and Probe() is
/// called from the query path under the same single-writer regime as every
/// other engine read. The class itself holds no locks.
class IvfIndex {
 public:
  IvfIndex() = default;

  /// Deterministic build over all rows of `rows` (every row live).
  /// bucket_override > 0 forces the bucket count; 0 picks ceil(sqrt(n)).
  /// An empty matrix builds an empty index (AddRow seeds it later).
  static IvfIndex Build(const PackedBitMatrix& rows, int bucket_override);

  /// Adopts an already-built layout — one packed centroid row per posting
  /// list, postings ascending — without any clustering work. The v3
  /// snapshot restore path: reload costs O(read) instead of the
  /// O(n·sqrt(n)) Build. Callers are responsible for posting soundness
  /// (the engine validates coverage against its live rows before calling).
  static IvfIndex FromParts(PackedBitMatrix centroids,
                            std::vector<std::vector<int>> postings);

  int num_buckets() const { return static_cast<int>(postings_.size()); }

  /// The engine-chosen probe width when a query does not pin one:
  /// ceil(num_buckets / 8) — an eighth of the buckets, which on a corpus
  /// with any cluster structure scans well under a quarter of the rows
  /// while keeping several buckets of slack around the nearest one.
  int default_nprobe() const {
    const int probes = (num_buckets() + 7) / 8;
    return probes > 0 ? probes : 1;
  }

  /// Assigns physical row `row` (words_per_row packed words at `words`) to
  /// its nearest centroid. The engine appends rows in ascending order, so
  /// each posting list stays sorted. On an index with no centroids yet (an
  /// engine built over zero rows), the row becomes the first centroid.
  void AddRow(const uint64_t* words, size_t words_per_row, int row);

  /// Compact hook: maps every posted row through the monotone old→new row
  /// map, dropping rows mapped to -1 (tombstoned). Lists stay sorted;
  /// centroids are kept.
  void Renumber(const std::vector<int>& old_to_new);

  /// The candidate pool of the `nprobe` nearest centroids (Hamming distance
  /// to the packed query, bucket-id tie-break): their posted rows minus
  /// tombstones, merged ascending. nprobe is clamped to [1, num_buckets],
  /// so kNprobeAll (INT_MAX) probes every bucket — the pool is then exactly
  /// the live rows and the exact-scoring stage answers bit-identically to a
  /// full scan. `query` must hold at least words_per_row words (PackQuery).
  std::vector<int> Probe(const std::vector<uint64_t>& query, int nprobe,
                         const std::vector<uint8_t>& tombstones) const;

  /// Posted rows of one bucket, ascending; tombstoned rows linger until
  /// Renumber. Observability for tests and invariant checks.
  const std::vector<int>& posting(int bucket) const;

  /// The packed centroid rows, one per bucket. Read by the snapshot writer
  /// (the v3 IVFX section persists them verbatim) and by tests.
  const PackedBitMatrix& centroids() const { return centroids_; }

 private:
  /// Nearest centroid by Hamming distance, lowest bucket id on ties.
  int NearestCentroid(const uint64_t* words, size_t words_per_row) const;

  PackedBitMatrix centroids_;  ///< one packed row per bucket
  std::vector<std::vector<int>> postings_;  ///< ascending physical rows
};

}  // namespace gdim

#endif  // GDIM_INDEX_IVF_INDEX_H_
