#include "index/ivf_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/random.h"

namespace gdim {

namespace {

/// XOR-popcount over n words — the same Hamming the scan kernels compute,
/// in raw-pointer form for centroid rows.
int HammingWords(const uint64_t* a, const uint64_t* b, size_t n) {
  int distance = 0;
  for (size_t w = 0; w < n; ++w) {
    distance += std::popcount(a[w] ^ b[w]);
  }
  return distance;
}

}  // namespace

IvfIndex IvfIndex::Build(const PackedBitMatrix& rows, int bucket_override) {
  IvfIndex index;
  const int n = rows.num_rows();
  const int p = rows.num_bits();
  index.centroids_ = PackedBitMatrix::WithWidth(p);
  if (n == 0) return index;
  const int buckets = std::clamp(
      bucket_override > 0
          ? bucket_override
          : static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))),
      1, n);

  // Seeded medoid sample, sorted so bucket ids follow physical row order —
  // a canonical labeling under which two builds over the same rows agree
  // bucket for bucket.
  Rng rng(kIvfSeed);
  std::vector<int> medoids = rng.SampleWithoutReplacement(n, buckets);
  std::sort(medoids.begin(), medoids.end());
  for (int m : medoids) index.centroids_.AppendRowFrom(rows, m);

  // Two Hamming-median refinement rounds: assign every row to its nearest
  // centroid, then move each centroid to the bitwise majority of its
  // members (the coordinate-wise median under Hamming distance). Ties go
  // to 1, empty buckets keep their centroid; every step is a pure function
  // of the rows, so refinement is deterministic.
  const size_t wpr = rows.words_per_row();
  for (int round = 0; round < 2; ++round) {
    std::vector<std::vector<int>> ones(
        static_cast<size_t>(buckets),
        std::vector<int>(static_cast<size_t>(p), 0));
    std::vector<int> members(static_cast<size_t>(buckets), 0);
    for (int row = 0; row < n; ++row) {
      const int b = index.NearestCentroid(rows.row(row), wpr);
      ++members[static_cast<size_t>(b)];
      const std::vector<uint8_t> bits = rows.UnpackRow(row);
      std::vector<int>& count = ones[static_cast<size_t>(b)];
      for (int r = 0; r < p; ++r) {
        count[static_cast<size_t>(r)] += bits[static_cast<size_t>(r)];
      }
    }
    PackedBitMatrix next = PackedBitMatrix::WithWidth(p);
    next.Reserve(buckets);
    std::vector<uint8_t> median(static_cast<size_t>(p), 0);
    for (int b = 0; b < buckets; ++b) {
      if (members[static_cast<size_t>(b)] == 0) {
        next.AppendRowFrom(index.centroids_, b);
        continue;
      }
      for (int r = 0; r < p; ++r) {
        median[static_cast<size_t>(r)] =
            2 * ones[static_cast<size_t>(b)][static_cast<size_t>(r)] >=
                    members[static_cast<size_t>(b)]
                ? 1
                : 0;
      }
      next.AppendRow(median);
    }
    index.centroids_ = std::move(next);
  }

  // Final assignment pass builds the postings, ascending by construction.
  index.postings_.assign(static_cast<size_t>(buckets), {});
  for (int row = 0; row < n; ++row) {
    const int b = index.NearestCentroid(rows.row(row), wpr);
    index.postings_[static_cast<size_t>(b)].push_back(row);
  }
  return index;
}

IvfIndex IvfIndex::FromParts(PackedBitMatrix centroids,
                             std::vector<std::vector<int>> postings) {
  GDIM_CHECK(static_cast<size_t>(centroids.num_rows()) == postings.size());
  IvfIndex index;
  index.centroids_ = std::move(centroids);
  index.postings_ = std::move(postings);
  return index;
}

void IvfIndex::AddRow(const uint64_t* words, size_t words_per_row, int row) {
  if (postings_.empty()) {
    // The engine was built over zero rows: the first insert seeds a single
    // bucket with itself as centroid. A generation swap (which rebuilds
    // over the grown corpus) is what re-partitions from here.
    centroids_ = PackedBitMatrix::FromWords(
        1, centroids_.num_bits(),
        std::vector<uint64_t>(words, words + words_per_row));
    postings_.push_back({row});
    return;
  }
  const int b = NearestCentroid(words, words_per_row);
  // Rows only grow, so appending keeps the posting list sorted.
  postings_[static_cast<size_t>(b)].push_back(row);
}

void IvfIndex::Renumber(const std::vector<int>& old_to_new) {
  for (std::vector<int>& list : postings_) {
    size_t kept = 0;
    for (int row : list) {
      const int renumbered = old_to_new[static_cast<size_t>(row)];
      // The old→new map is monotone, so the surviving rows stay sorted.
      if (renumbered >= 0) list[kept++] = renumbered;
    }
    list.resize(kept);
  }
}

std::vector<int> IvfIndex::Probe(
    const std::vector<uint64_t>& query, int nprobe,
    const std::vector<uint8_t>& tombstones) const {
  std::vector<int> candidates;
  const int buckets = num_buckets();
  if (buckets == 0) return candidates;
  const size_t wpr = centroids_.words_per_row();
  GDIM_DCHECK(query.size() >= wpr);
  const int probes = std::clamp(nprobe, 1, buckets);
  // Rank buckets by (distance, bucket id): the pair order makes ties
  // deterministic, and nth_element keeps the common probes << buckets case
  // O(buckets). Only the probed *set* matters — candidates are re-sorted
  // below — so the unspecified prefix order inside nth_element is fine.
  std::vector<std::pair<int, int>> order;
  order.reserve(static_cast<size_t>(buckets));
  for (int b = 0; b < buckets; ++b) {
    order.emplace_back(HammingWords(query.data(), centroids_.row(b), wpr),
                       b);
  }
  if (probes < buckets) {
    std::nth_element(order.begin(), order.begin() + probes, order.end());
    order.resize(static_cast<size_t>(probes));
  }
  size_t pool = 0;
  for (const auto& [distance, b] : order) {
    pool += postings_[static_cast<size_t>(b)].size();
  }
  candidates.reserve(pool);
  for (const auto& [distance, b] : order) {
    for (int row : postings_[static_cast<size_t>(b)]) {
      if (tombstones[static_cast<size_t>(row)] == 0) {
        candidates.push_back(row);
      }
    }
  }
  // The scoring stage's tie-break (score, then physical row == id order)
  // expects ascending candidates, like every other candidate path.
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

const std::vector<int>& IvfIndex::posting(int bucket) const {
  GDIM_CHECK(bucket >= 0 && bucket < num_buckets());
  return postings_[static_cast<size_t>(bucket)];
}

int IvfIndex::NearestCentroid(const uint64_t* words,
                              size_t words_per_row) const {
  GDIM_DCHECK(centroids_.num_rows() > 0);
  GDIM_DCHECK(words_per_row == centroids_.words_per_row());
  int best = 0;
  int best_distance = HammingWords(words, centroids_.row(0), words_per_row);
  for (int b = 1; b < centroids_.num_rows(); ++b) {
    const int distance = HammingWords(words, centroids_.row(b), words_per_row);
    if (distance < best_distance) {
      best = b;
      best_distance = distance;
    }
  }
  return best;
}

}  // namespace gdim
