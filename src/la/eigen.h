#ifndef GDIM_LA_EIGEN_H_
#define GDIM_LA_EIGEN_H_

#include <functional>
#include <vector>

#include "la/matrix.h"

namespace gdim {

/// A symmetric linear operator y = A x given implicitly; lets the spectral
/// baselines (MCFS/UDFS/NDFS) run matrix-free when A = X G Xᵀ would be too
/// large to materialize.
using SymmetricOperator =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// Computes the k largest-eigenvalue eigenpairs of a symmetric operator of
/// the given dimension by power iteration with Gram-Schmidt deflation.
/// Deterministic (seeded start vectors). Returns eigenvalues (descending)
/// and the corresponding unit eigenvectors.
struct EigenResult {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
};

EigenResult TopEigenpairs(const SymmetricOperator& op, int dim, int k,
                          int max_iters = 300, double tol = 1e-9,
                          uint64_t seed = 7);

/// Computes the k *smallest*-eigenvalue eigenpairs of a symmetric positive
/// semidefinite operator with eigenvalues in [0, upper]: runs TopEigenpairs
/// on (upper·I − A) and maps the spectrum back. Values ascending.
EigenResult BottomEigenpairs(const SymmetricOperator& op, int dim, int k,
                             double upper, int max_iters = 300,
                             double tol = 1e-9, uint64_t seed = 7);

/// Estimates an upper bound of the spectral radius of a symmetric operator
/// via a few power iterations (result is scaled up by a safety factor).
double EstimateSpectralUpperBound(const SymmetricOperator& op, int dim,
                                  int iters = 30, uint64_t seed = 11);

/// Full eigendecomposition of a small dense symmetric matrix via the cyclic
/// Jacobi method. Intended for matrices up to a few hundred rows (used in
/// tests and for MICI's 2x2 covariance analysis). Values ascending.
EigenResult JacobiEigen(const Matrix& a, int max_sweeps = 64);

}  // namespace gdim

#endif  // GDIM_LA_EIGEN_H_
