#include "la/solvers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/random.h"

namespace gdim {

std::vector<double> ConjugateGradient(const SymmetricOperator& op,
                                      const std::vector<double>& b,
                                      int max_iters, double tol) {
  const size_t n = b.size();
  std::vector<double> x(n, 0.0);
  std::vector<double> r = b;  // r = b - A·0
  std::vector<double> p = r;
  double rs = Dot(r, r);
  const double stop = tol * tol * std::max(rs, 1e-30);
  for (int it = 0; it < max_iters && rs > stop; ++it) {
    std::vector<double> ap = op(p);
    double pap = Dot(p, ap);
    if (pap <= 1e-300) break;  // numerically singular direction
    double alpha = rs / pap;
    Axpy(alpha, p, &x);
    Axpy(-alpha, ap, &r);
    double rs_new = Dot(r, r);
    double beta = rs_new / rs;
    for (size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs = rs_new;
  }
  return x;
}

std::vector<double> LassoCoordinateDescent(
    const std::vector<std::vector<double>>& columns,
    const std::vector<double>& y, double lambda, int max_iters, double tol) {
  const size_t m = columns.size();
  const size_t n = y.size();
  std::vector<double> w(m, 0.0);
  std::vector<double> residual = y;  // y - Xw, with w = 0
  std::vector<double> col_sq(m, 0.0);
  for (size_t j = 0; j < m; ++j) {
    GDIM_CHECK(columns[j].size() == n) << "column length mismatch";
    col_sq[j] = Dot(columns[j], columns[j]);
  }
  for (int it = 0; it < max_iters; ++it) {
    double max_delta = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (col_sq[j] <= 1e-300) continue;
      // rho = x_jᵀ(residual + w_j x_j): correlation with w_j zeroed out.
      double rho = Dot(columns[j], residual) + w[j] * col_sq[j];
      double new_w;
      if (rho > lambda) {
        new_w = (rho - lambda) / col_sq[j];
      } else if (rho < -lambda) {
        new_w = (rho + lambda) / col_sq[j];
      } else {
        new_w = 0.0;
      }
      double delta = new_w - w[j];
      if (delta != 0.0) {
        Axpy(-delta, columns[j], &residual);
        w[j] = new_w;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < tol) break;
  }
  return w;
}

std::vector<int> KMeans(const std::vector<std::vector<double>>& points, int k,
                        uint64_t seed, int max_iters) {
  const int n = static_cast<int>(points.size());
  GDIM_CHECK(n > 0 && k > 0);
  k = std::min(k, n);
  const size_t dim = points[0].size();
  Rng rng(seed);

  auto sq_dist = [dim](const std::vector<double>& a,
                       const std::vector<double>& b) {
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      double d = a[i] - b[i];
      acc += d * d;
    }
    return acc;
  };

  // k-means++ seeding.
  std::vector<std::vector<double>> centers;
  centers.push_back(points[static_cast<size_t>(
      rng.UniformU64(static_cast<uint64_t>(n)))]);
  std::vector<double> min_d(static_cast<size_t>(n),
                            std::numeric_limits<double>::max());
  while (static_cast<int>(centers.size()) < k) {
    for (int i = 0; i < n; ++i) {
      min_d[static_cast<size_t>(i)] =
          std::min(min_d[static_cast<size_t>(i)],
                   sq_dist(points[static_cast<size_t>(i)], centers.back()));
    }
    double total = 0.0;
    for (double d : min_d) total += d;
    if (total <= 0.0) {
      // All points coincide with some center; pick arbitrarily.
      centers.push_back(points[static_cast<size_t>(
          rng.UniformU64(static_cast<uint64_t>(n)))]);
      continue;
    }
    std::vector<double> weights(min_d.begin(), min_d.end());
    centers.push_back(points[static_cast<size_t>(rng.WeightedIndex(weights))]);
  }

  std::vector<int> assign(static_cast<size_t>(n), 0);
  for (int it = 0; it < max_iters; ++it) {
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        double d = sq_dist(points[static_cast<size_t>(i)],
                           centers[static_cast<size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[static_cast<size_t>(i)] != best) {
        assign[static_cast<size_t>(i)] = best;
        changed = true;
      }
    }
    if (!changed && it > 0) break;
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(k), std::vector<double>(dim, 0.0));
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
      int c = assign[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      for (size_t d = 0; d < dim; ++d) {
        sums[static_cast<size_t>(c)][d] += points[static_cast<size_t>(i)][d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep old center
      for (size_t d = 0; d < dim; ++d) {
        centers[static_cast<size_t>(c)][d] =
            sums[static_cast<size_t>(c)][d] / counts[static_cast<size_t>(c)];
      }
    }
  }
  return assign;
}

}  // namespace gdim
