#ifndef GDIM_LA_SOLVERS_H_
#define GDIM_LA_SOLVERS_H_

#include <vector>

#include "la/eigen.h"

namespace gdim {

/// Solves A x = b for a symmetric positive definite operator A by conjugate
/// gradients. Returns the solution (best iterate on non-convergence).
std::vector<double> ConjugateGradient(const SymmetricOperator& op,
                                      const std::vector<double>& b,
                                      int max_iters = 200, double tol = 1e-8);

/// Coordinate-descent LASSO: minimizes 0.5·||y − Xw||² + λ·||w||₁ over w.
/// X is given column-major as `columns` (each a length-n vector). Used by the
/// MCFS baseline in place of LARS (same optimum family, simpler solver).
std::vector<double> LassoCoordinateDescent(
    const std::vector<std::vector<double>>& columns,
    const std::vector<double>& y, double lambda, int max_iters = 100,
    double tol = 1e-7);

/// k-means on dense points with deterministic seeding (k-means++ style
/// weighting driven by the given seed). Returns cluster assignment per point.
std::vector<int> KMeans(const std::vector<std::vector<double>>& points, int k,
                        uint64_t seed, int max_iters = 50);

}  // namespace gdim

#endif  // GDIM_LA_SOLVERS_H_
