#include "la/eigen.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace gdim {

namespace {

// Removes from v its projections onto the given unit vectors.
void DeflateAgainst(const std::vector<std::vector<double>>& basis,
                    std::vector<double>* v) {
  for (const auto& b : basis) {
    double proj = Dot(b, *v);
    Axpy(-proj, b, v);
  }
}

std::vector<double> RandomUnit(int dim, Rng* rng) {
  std::vector<double> v(static_cast<size_t>(dim));
  for (double& x : v) x = rng->Normal();
  Normalize(&v);
  return v;
}

}  // namespace

EigenResult TopEigenpairs(const SymmetricOperator& op, int dim, int k,
                          int max_iters, double tol, uint64_t seed) {
  EigenResult result;
  Rng rng(seed);
  k = std::min(k, dim);
  for (int j = 0; j < k; ++j) {
    std::vector<double> v = RandomUnit(dim, &rng);
    DeflateAgainst(result.vectors, &v);
    Normalize(&v);
    double lambda = 0.0;
    for (int it = 0; it < max_iters; ++it) {
      std::vector<double> w = op(v);
      DeflateAgainst(result.vectors, &w);
      double n = Norm2(w);
      if (n < 1e-14) {  // v is (numerically) in the span of earlier vectors
        lambda = 0.0;
        break;
      }
      for (double& x : w) x /= n;
      double new_lambda = Dot(w, op(w));
      bool converged = std::abs(new_lambda - lambda) <=
                       tol * std::max(1.0, std::abs(new_lambda));
      v = std::move(w);
      lambda = new_lambda;
      if (converged && it > 2) break;
    }
    result.values.push_back(lambda);
    result.vectors.push_back(std::move(v));
  }
  return result;
}

EigenResult BottomEigenpairs(const SymmetricOperator& op, int dim, int k,
                             double upper, int max_iters, double tol,
                             uint64_t seed) {
  SymmetricOperator shifted = [&op, upper](const std::vector<double>& x) {
    std::vector<double> y = op(x);
    for (size_t i = 0; i < y.size(); ++i) y[i] = upper * x[i] - y[i];
    return y;
  };
  EigenResult top = TopEigenpairs(shifted, dim, k, max_iters, tol, seed);
  EigenResult out;
  out.vectors = std::move(top.vectors);
  out.values.reserve(top.values.size());
  for (double v : top.values) out.values.push_back(upper - v);
  return out;  // ascending: largest shifted value = smallest original
}

double EstimateSpectralUpperBound(const SymmetricOperator& op, int dim,
                                  int iters, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v = RandomUnit(dim, &rng);
  double lambda = 0.0;
  for (int it = 0; it < iters; ++it) {
    std::vector<double> w = op(v);
    double n = Norm2(w);
    if (n < 1e-14) break;
    for (double& x : w) x /= n;
    lambda = std::abs(Dot(w, op(w)));
    v = std::move(w);
  }
  return lambda * 1.5 + 1e-6;  // safety margin
}

EigenResult JacobiEigen(const Matrix& a, int max_sweeps) {
  GDIM_CHECK(a.rows() == a.cols()) << "JacobiEigen needs a square matrix";
  const int n = a.rows();
  Matrix m = a;
  // Eigenvector accumulator, starts as identity.
  Matrix v(n, n, 0.0);
  for (int i = 0; i < n; ++i) v.at(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += m.at(p, q) * m.at(p, q);
    }
    if (off < 1e-22) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double apq = m.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double app = m.at(p, p), aqq = m.at(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (int i = 0; i < n; ++i) {
          double mip = m.at(i, p), miq = m.at(i, q);
          m.at(i, p) = c * mip - s * miq;
          m.at(i, q) = s * mip + c * miq;
        }
        for (int i = 0; i < n; ++i) {
          double mpi = m.at(p, i), mqi = m.at(q, i);
          m.at(p, i) = c * mpi - s * mqi;
          m.at(q, i) = s * mpi + c * mqi;
        }
        for (int i = 0; i < n; ++i) {
          double vip = v.at(i, p), viq = v.at(i, q);
          v.at(i, p) = c * vip - s * viq;
          v.at(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  // Collect and sort ascending by eigenvalue.
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(),
            [&m](int x, int y) { return m.at(x, x) < m.at(y, y); });
  EigenResult result;
  for (int idx : order) {
    result.values.push_back(m.at(idx, idx));
    std::vector<double> col(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) col[static_cast<size_t>(i)] = v.at(i, idx);
    result.vectors.push_back(std::move(col));
  }
  return result;
}

}  // namespace gdim
