#include "la/matrix.h"

#include <cmath>

namespace gdim {

std::vector<double> Matrix::MatVec(const std::vector<double>& v) const {
  GDIM_CHECK(static_cast<int>(v.size()) == cols_);
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += row[c] * v[static_cast<size_t>(c)];
    out[static_cast<size_t>(r)] = acc;
  }
  return out;
}

std::vector<double> Matrix::TransposeMatVec(
    const std::vector<double>& v) const {
  GDIM_CHECK(static_cast<int>(v.size()) == rows_);
  std::vector<double> out(static_cast<size_t>(cols_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double s = v[static_cast<size_t>(r)];
    if (s == 0.0) continue;
    for (int c = 0; c < cols_; ++c) out[static_cast<size_t>(c)] += s * row[c];
  }
  return out;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  GDIM_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

void Axpy(double s, const std::vector<double>& b, std::vector<double>* a) {
  GDIM_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += s * b[i];
}

void Normalize(std::vector<double>* v) {
  double n = Norm2(*v);
  if (n <= 0.0) return;
  for (double& x : *v) x /= n;
}

}  // namespace gdim
