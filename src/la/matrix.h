#ifndef GDIM_LA_MATRIX_H_
#define GDIM_LA_MATRIX_H_

#include <vector>

#include "common/logging.h"

namespace gdim {

/// Minimal dense row-major matrix of doubles. Only the operations the
/// feature-selection baselines need; not a general linear algebra library.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    GDIM_CHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& at(int r, int c) {
    GDIM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }
  double at(int r, int c) const {
    GDIM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }

  /// Raw row pointer (row-major contiguous).
  double* Row(int r) {
    return &data_[static_cast<size_t>(r) * static_cast<size_t>(cols_)];
  }
  const double* Row(int r) const {
    return &data_[static_cast<size_t>(r) * static_cast<size_t>(cols_)];
  }

  /// this * v (length cols() -> rows()).
  std::vector<double> MatVec(const std::vector<double>& v) const;

  /// this^T * v (length rows() -> cols()).
  std::vector<double> TransposeMatVec(const std::vector<double>& v) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// a += s * b.
void Axpy(double s, const std::vector<double>& b, std::vector<double>* a);

/// Scales v so that ||v||2 = 1 (no-op on the zero vector).
void Normalize(std::vector<double>* v);

}  // namespace gdim

#endif  // GDIM_LA_MATRIX_H_
