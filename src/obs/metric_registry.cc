#include "obs/metric_registry.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace gdim {

namespace {

/// Renders a bucket bound for a `le="..."` label. The stage bounds are all
/// integral, so this prints exact integers; a fractional bound (tests) falls
/// back to %g.
std::string FormatLe(double bound) {
  char buf[48];
  if (bound == std::floor(bound) && std::abs(bound) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", bound);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", bound);
  }
  return std::string(buf);
}

std::string FormatSum(double sum) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", sum);
  return std::string(buf);
}

/// `{labels}` when a label body is present, "" otherwise.
std::string Braced(const std::string& labels) {
  if (labels.empty()) return "";
  return "{" + labels + "}";
}

/// Joins a label body with an extra `le` pair: `{le="10"}` or
/// `{kernel="avx2",le="10"}`.
std::string BracedWithLe(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  return "{" + labels + ",le=\"" + le + "\"}";
}

}  // namespace

const std::vector<double>& StageLatencyBucketBoundsUsec() {
  static const std::vector<double> kBounds = {
      1,     2,     5,      10,     25,     50,      100,     250,    500,
      1000,  2500,  5000,   10000,  25000,  50000,   100000,  250000, 500000,
      1000000, 2500000};
  return kBounds;
}

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds_usec)
    : bounds_(std::move(upper_bounds_usec)), cells_(bounds_.size() + 1) {}

void LatencyHistogram::Record(double usec) {
  size_t i = 0;
  while (i < bounds_.size() && usec > bounds_[i]) ++i;
  cells_[i].fetch_add(1, std::memory_order_relaxed);
  const double nanos = usec * 1e3;
  sum_nanos_.fetch_add(nanos > 0 ? static_cast<uint64_t>(std::llround(nanos))
                                 : 0,
                       std::memory_order_relaxed);
}

void LatencyHistogram::Merge(const BucketHistogram& other) {
  if (other.upper_bounds() != bounds_) return;
  const std::vector<uint64_t>& counts = other.bucket_counts();
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (counts[i] != 0) cells_[i].fetch_add(counts[i], std::memory_order_relaxed);
  }
  const double nanos = other.sum() * 1e3;
  sum_nanos_.fetch_add(nanos > 0 ? static_cast<uint64_t>(std::llround(nanos))
                                 : 0,
                       std::memory_order_relaxed);
}

BucketHistogram LatencyHistogram::Snapshot() const {
  std::vector<uint64_t> counts(cells_.size(), 0);
  for (size_t i = 0; i < cells_.size(); ++i) {
    counts[i] = cells_[i].load(std::memory_order_relaxed);
  }
  const double sum_usec =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e3;
  return BucketHistogram(bounds_, std::move(counts), sum_usec);
}

MetricCounter* MetricRegistry::GetCounter(const std::string& name,
                                          const std::string& help) {
  MutexLock lock(&mu_);
  CounterFamily& family = counters_[name];
  if (family.cell == nullptr) {
    family.help = help;
    family.cell = std::make_unique<MetricCounter>();
  }
  return family.cell.get();
}

MetricGauge* MetricRegistry::GetGauge(const std::string& name,
                                      const std::string& help) {
  MutexLock lock(&mu_);
  GaugeFamily& family = gauges_[name];
  if (family.cell == nullptr) {
    family.help = help;
    family.cell = std::make_unique<MetricGauge>();
  }
  return family.cell.get();
}

LatencyHistogram* MetricRegistry::GetHistogram(const std::string& name,
                                               const std::string& help,
                                               const std::string& labels) {
  MutexLock lock(&mu_);
  HistogramFamily& family = histograms_[name];
  if (family.help.empty()) family.help = help;
  std::unique_ptr<LatencyHistogram>& series = family.series[labels];
  if (series == nullptr) {
    series =
        std::make_unique<LatencyHistogram>(StageLatencyBucketBoundsUsec());
  }
  return series.get();
}

LatencyHistogram* MetricRegistry::GetStageHistogram(const std::string& stage,
                                                    const std::string& help,
                                                    const std::string& labels) {
  return GetHistogram("gdim_stage_" + stage + "_usec", help, labels);
}

std::string MetricRegistry::ExpositionText() const {
  // One pre-rendered block per family, keyed by family name so the three
  // kind-specific maps interleave in one stable sorted order.
  std::map<std::string, std::string> blocks;
  MutexLock lock(&mu_);
  for (const auto& [name, family] : counters_) {
    std::string block;
    block += "# HELP " + name + " " + family.help + "\n";
    block += "# TYPE " + name + " counter\n";
    block += name + " " + std::to_string(family.cell->value()) + "\n";
    blocks[name] = std::move(block);
  }
  for (const auto& [name, family] : gauges_) {
    std::string block;
    block += "# HELP " + name + " " + family.help + "\n";
    block += "# TYPE " + name + " gauge\n";
    block += name + " " + std::to_string(family.cell->value()) + "\n";
    blocks[name] = std::move(block);
  }
  for (const auto& [name, family] : histograms_) {
    std::string block;
    block += "# HELP " + name + " " + family.help + "\n";
    block += "# TYPE " + name + " histogram\n";
    for (const auto& [labels, series] : family.series) {
      const BucketHistogram snapshot = series->Snapshot();
      const std::vector<uint64_t> cumulative = snapshot.CumulativeCounts();
      const std::vector<double>& bounds = snapshot.upper_bounds();
      for (size_t i = 0; i < bounds.size(); ++i) {
        block += name + "_bucket" + BracedWithLe(labels, FormatLe(bounds[i])) +
                 " " + std::to_string(cumulative[i]) + "\n";
      }
      block += name + "_bucket" + BracedWithLe(labels, "+Inf") + " " +
               std::to_string(cumulative.back()) + "\n";
      block += name + "_sum" + Braced(labels) + " " +
               FormatSum(snapshot.sum()) + "\n";
      block += name + "_count" + Braced(labels) + " " +
               std::to_string(snapshot.count()) + "\n";
    }
    blocks[name] = std::move(block);
  }
  std::string out;
  for (const auto& [name, block] : blocks) out += block;
  return out;
}

}  // namespace gdim
