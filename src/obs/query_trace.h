#ifndef GDIM_OBS_QUERY_TRACE_H_
#define GDIM_OBS_QUERY_TRACE_H_

namespace gdim {

/// Per-query stage breakdown, filled by the batch executor for `TRACE=1`
/// queries and for the slow-query log. All values are wall-clock
/// microseconds of non-overlapping dispatcher segments of the query's life,
/// so queue + map + cache + scan <= total <= the client-observed latency
/// (total excludes only the promise handoff back to the submitter). map and
/// cache are shared passes over the whole coalesced run the query rode —
/// the query waited for them, same convention as tile latency; scan is the
/// query's scan span's wall time, 0 on a cache hit.
struct QueryTrace {
  double queue_usec = 0.0;  ///< admission-queue wait (submit → dispatch)
  double map_usec = 0.0;    ///< the run's shared stage-1 MapAll pass
  double cache_usec = 0.0;  ///< the run's shared result-cache probe
  double scan_usec = 0.0;   ///< this query's scan span (0 = cache hit)
  double total_usec = 0.0;  ///< submit → answer ready
  bool cache_hit = false;   ///< answered from the result cache
};

}  // namespace gdim

#endif  // GDIM_OBS_QUERY_TRACE_H_
