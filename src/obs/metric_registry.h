#ifndef GDIM_OBS_METRIC_REGISTRY_H_
#define GDIM_OBS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/sync.h"

namespace gdim {

// ---------------------------------------------------------------------------
// Pipeline stage names.
//
// One constant per instrumented stage of the serving pipeline; the metric a
// stage records under is always `gdim_stage_<stage>_usec`. These spellings
// are a wire-adjacent contract: docs/protocol.md's "Query tracing" stage
// table must list exactly this set, in both directions (enforced by
// tools/check_invariants.py check 6, the same pattern as the wire-verb and
// snapshot-section checks).
// ---------------------------------------------------------------------------

/// Submit → dispatcher pop: time spent waiting in the admission queue.
inline constexpr char kStageAdmissionWait[] = "admission_wait";
/// Result-cache key computation + lookup for one coalesced query run.
inline constexpr char kStageCacheProbe[] = "cache_probe";
/// Stage-1 VF2 mapping of one coalesced query run onto the dimension.
inline constexpr char kStageMapAll[] = "map_all";
/// One shard's exact (full or prefiltered) scan of one query span.
inline constexpr char kStageScanExact[] = "scan_exact";
/// One shard's MODE=approx candidate scan of one query span.
inline constexpr char kStageScanApprox[] = "scan_approx";
/// One query's IVF bucket probe (MODE=approx only).
inline constexpr char kStageIvfProbe[] = "ivf_probe";
/// Serial merge of per-shard top-k lists into one ranking.
inline constexpr char kStageGatherMerge[] = "gather_merge";
/// One Insert/Remove/Compact applied to the engine (+ store).
inline constexpr char kStageMutationApply[] = "mutation_apply";
/// SNAPSHOT's dispatcher-side freeze (the bounded serving pause).
inline constexpr char kStageSnapshotFreeze[] = "snapshot_freeze";
/// SNAPSHOT's background file write.
inline constexpr char kStageSnapshotWrite[] = "snapshot_write";
/// REINDEX background selection: freeze handoff → finished generation.
inline constexpr char kStageReindexBuild[] = "reindex_build";
/// REINDEX dispatcher-side reconcile + generation swap.
inline constexpr char kStageReindexSwap[] = "reindex_swap";

/// The fixed bucket layout every stage histogram uses: exponential-ish
/// upper bounds in microseconds from 1us to 2.5s (an implicit +Inf bucket
/// catches the rest). Integral values only, so the exposition text renders
/// them exactly.
const std::vector<double>& StageLatencyBucketBoundsUsec();

/// Monotonically increasing event count. Lock-free; relaxed atomics — each
/// cell is an independent statistic, not a synchronization point.
class MetricCounter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, uptime). Lock-free.
class MetricGauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket latency histogram with one atomic cell per bucket, so hot
/// paths record without taking any lock. The exposition count is derived as
/// the sum of the bucket cells — count always equals the +Inf cumulative
/// bucket exactly, even while other threads are recording.
class LatencyHistogram {
 public:
  /// `upper_bounds_usec` must be strictly increasing; an implicit +Inf
  /// overflow bucket is appended.
  explicit LatencyHistogram(std::vector<double> upper_bounds_usec);

  /// Adds one sample (microseconds). Lock-free.
  void Record(double usec);

  /// Bulk-adds a pre-binned histogram with the same bucket bounds — how the
  /// registry folds per-shard scan histograms into the process-wide series
  /// without one atomic op per original sample. Mismatched bounds are
  /// dropped (the registry only merges histograms built from its own
  /// bounds).
  void Merge(const BucketHistogram& other);

  /// A consistent-enough copy for quantile math in tests and benches:
  /// relaxed per-cell loads, count derived from the loaded cells.
  BucketHistogram Snapshot() const;

  const std::vector<double>& upper_bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 cells; the last is the +Inf overflow bucket.
  std::vector<std::atomic<uint64_t>> cells_;
  /// Sum kept in integer nanoseconds: atomic fetch-add on an integer is
  /// portable everywhere the toolchain matrix builds, unlike atomic double.
  std::atomic<uint64_t> sum_nanos_{0};
};

/// Thread-safe name → metric registry with Prometheus text exposition.
///
/// Registration (Get*) takes a mutex and returns a pointer that stays valid
/// for the registry's lifetime, so callers resolve their cells once at
/// startup and the hot path touches only the lock-free cells. Histograms may
/// carry one pre-rendered label body (e.g. `kernel="avx2"`) distinguishing
/// series within a family; counters and gauges are unlabeled.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Finds or creates. The first registration of a family fixes its help
  /// text; later calls with the same name return the existing cell.
  MetricCounter* GetCounter(const std::string& name, const std::string& help)
      GDIM_EXCLUDES(mu_);
  MetricGauge* GetGauge(const std::string& name, const std::string& help)
      GDIM_EXCLUDES(mu_);
  /// `labels` is a pre-rendered Prometheus label body without braces, e.g.
  /// `kernel="avx2"`; empty means the unlabeled series. All histograms use
  /// StageLatencyBucketBoundsUsec().
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels = "")
      GDIM_EXCLUDES(mu_);
  /// The per-stage histogram `gdim_stage_<stage>_usec` (stage is one of the
  /// kStage* constants above).
  LatencyHistogram* GetStageHistogram(const std::string& stage,
                                      const std::string& help,
                                      const std::string& labels = "")
      GDIM_EXCLUDES(mu_);

  /// Prometheus text exposition: `# HELP` / `# TYPE` per family, families
  /// and series in stable sorted order, histograms as cumulative
  /// `_bucket{le=...}` lines plus `_sum` and `_count`. No terminator line —
  /// the wire layer appends its own `# EOF`.
  std::string ExpositionText() const GDIM_EXCLUDES(mu_);

 private:
  struct CounterFamily {
    std::string help;
    std::unique_ptr<MetricCounter> cell;
  };
  struct GaugeFamily {
    std::string help;
    std::unique_ptr<MetricGauge> cell;
  };
  struct HistogramFamily {
    std::string help;
    /// label body → series, sorted so exposition order is stable.
    std::map<std::string, std::unique_ptr<LatencyHistogram>> series;
  };

  mutable Mutex mu_;
  std::map<std::string, CounterFamily> counters_ GDIM_GUARDED_BY(mu_);
  std::map<std::string, GaugeFamily> gauges_ GDIM_GUARDED_BY(mu_);
  std::map<std::string, HistogramFamily> histograms_ GDIM_GUARDED_BY(mu_);
};

}  // namespace gdim

#endif  // GDIM_OBS_METRIC_REGISTRY_H_
