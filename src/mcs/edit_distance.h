#ifndef GDIM_MCS_EDIT_DISTANCE_H_
#define GDIM_MCS_EDIT_DISTANCE_H_

#include <cstdint>

#include "graph/graph.h"

namespace gdim {

/// Edit operation costs for labeled graph edit distance. Defaults give the
/// common uniform-cost model.
struct EditCosts {
  double vertex_substitution = 1.0;  ///< relabel a vertex
  double vertex_indel = 1.0;         ///< insert or delete a vertex
  double edge_substitution = 1.0;    ///< relabel an edge
  double edge_indel = 1.0;           ///< insert or delete an edge
};

/// Result of a graph edit distance computation.
struct GedResult {
  double distance = 0.0;
  bool optimal = true;   ///< false if the node budget was exhausted
  uint64_t nodes = 0;    ///< branch-and-bound nodes visited
};

/// Exact graph edit distance between two undirected labeled graphs by
/// branch and bound over vertex correspondences (vertices of `a` map to
/// vertices of `b` or to ε), with an admissible label-multiset lower bound.
/// GED is the second NP-hard similarity the paper names (besides MCS);
/// exact computation is only feasible for small graphs — exactly this
/// problem domain. max_nodes = 0 means unlimited.
GedResult GraphEditDistance(const Graph& a, const Graph& b,
                            const EditCosts& costs = {},
                            uint64_t max_nodes = 0);

}  // namespace gdim

#endif  // GDIM_MCS_EDIT_DISTANCE_H_
