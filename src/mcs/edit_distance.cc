#include "mcs/edit_distance.h"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "common/logging.h"

namespace gdim {

namespace {

class GedSearch {
 public:
  GedSearch(const Graph& a, const Graph& b, const EditCosts& costs,
            uint64_t max_nodes)
      : a_(a), b_(b), costs_(costs), max_nodes_(max_nodes) {}

  GedResult Run() {
    mapping_.assign(static_cast<size_t>(a_.NumVertices()), kUnassigned);
    used_.assign(static_cast<size_t>(b_.NumVertices()), false);
    best_ = UpperBoundTrivial();
    Extend(0, 0.0);
    GedResult result;
    result.distance = best_;
    result.optimal = !aborted_;
    result.nodes = nodes_;
    return result;
  }

 private:
  static constexpr int kUnassigned = -2;
  static constexpr int kEps = -1;

  // Deleting everything in a and inserting everything in b is always a
  // valid edit script — the initial incumbent.
  double UpperBoundTrivial() const {
    return (a_.NumVertices() + b_.NumVertices()) * costs_.vertex_indel +
           (a_.NumEdges() + b_.NumEdges()) * costs_.edge_indel;
  }

  // Admissible bound on the remaining cost: vertices of a from `depth` on
  // and unused vertices of b must be matched/substituted/indel'ed; edges are
  // ignored (their cost is non-negative).
  double RemainingLowerBound(int depth) const {
    std::map<LabelId, int> need;  // label -> surplus in a(+) / b(-)
    int remaining_a = 0, remaining_b = 0;
    for (int v = depth; v < a_.NumVertices(); ++v) {
      ++need[a_.VertexLabel(v)];
      ++remaining_a;
    }
    for (int u = 0; u < b_.NumVertices(); ++u) {
      if (used_[static_cast<size_t>(u)]) continue;
      --need[b_.VertexLabel(u)];
      ++remaining_b;
    }
    // Matched identical labels are free; the rest pay substitution (both
    // sides present) or indel (size difference).
    int mismatched = 0;
    for (const auto& [label, surplus] : need) {
      mismatched += std::abs(surplus);
    }
    int size_diff = std::abs(remaining_a - remaining_b);
    int substitutions = (mismatched - size_diff) / 2;
    return substitutions *
               std::min(costs_.vertex_substitution, 2.0 * costs_.vertex_indel) +
           size_diff * costs_.vertex_indel;
  }

  // Cost of the edges finalized by deciding vertex pv: edges from pv to
  // already-decided vertices of a, compared with the image edges.
  double EdgeCost(VertexId pv, int image) const {
    double cost = 0.0;
    for (const AdjEntry& e : a_.Neighbors(pv)) {
      if (e.neighbor >= pv || mapping_[static_cast<size_t>(e.neighbor)] ==
                                  kUnassigned) {
        continue;  // scored when the later endpoint is decided
      }
      int other = mapping_[static_cast<size_t>(e.neighbor)];
      if (image == kEps || other == kEps) {
        cost += costs_.edge_indel;  // edge of a has no image
        continue;
      }
      EdgeId te = b_.FindEdge(image, other);
      if (te < 0) {
        cost += costs_.edge_indel;
      } else if (b_.GetEdge(te).label != e.edge_label) {
        cost += costs_.edge_substitution;
      }
    }
    if (image != kEps) {
      // Edges of b between image and already-used vertices that have no
      // pre-image edge: insertions.
      for (const AdjEntry& e : b_.Neighbors(image)) {
        if (!used_[static_cast<size_t>(e.neighbor)]) continue;
        // Find the pre-image of e.neighbor among decided vertices of a.
        int pre = -1;
        for (int v = 0; v < pv; ++v) {
          if (mapping_[static_cast<size_t>(v)] == e.neighbor) {
            pre = v;
            break;
          }
        }
        if (pre < 0) continue;  // neighbor used by nothing before pv: skip
        if (a_.FindEdge(pv, pre) < 0) cost += costs_.edge_indel;
      }
    }
    return cost;
  }

  // Cost of inserting all edges of b among unused vertices once every vertex
  // of a is decided.
  double TailInsertionCost() const {
    double cost = 0.0;
    for (const Edge& e : b_.edges()) {
      bool u_used = used_[static_cast<size_t>(e.u)];
      bool v_used = used_[static_cast<size_t>(e.v)];
      if (!u_used || !v_used) {
        // At least one endpoint will be an inserted vertex; the edge must be
        // inserted too — but only count it once, at the leaf.
        cost += costs_.edge_indel;
      }
    }
    return cost;
  }

  void Extend(int depth, double cost) {
    if (max_nodes_ != 0 && nodes_ >= max_nodes_) {
      aborted_ = true;
      return;
    }
    ++nodes_;
    if (cost + RemainingLowerBound(depth) >= best_) return;
    if (depth == a_.NumVertices()) {
      // Unused vertices of b are insertions; edges of b with an unused
      // endpoint are insertions as well.
      double leaf = cost + TailInsertionCost();
      for (int u = 0; u < b_.NumVertices(); ++u) {
        if (!used_[static_cast<size_t>(u)]) leaf += costs_.vertex_indel;
      }
      best_ = std::min(best_, leaf);
      return;
    }
    VertexId pv = depth;
    // Substitution / identity branches.
    for (int u = 0; u < b_.NumVertices(); ++u) {
      if (used_[static_cast<size_t>(u)]) continue;
      double vc = a_.VertexLabel(pv) == b_.VertexLabel(u)
                      ? 0.0
                      : costs_.vertex_substitution;
      mapping_[static_cast<size_t>(pv)] = u;
      used_[static_cast<size_t>(u)] = true;
      Extend(depth + 1, cost + vc + EdgeCost(pv, u));
      used_[static_cast<size_t>(u)] = false;
      mapping_[static_cast<size_t>(pv)] = kUnassigned;
      if (aborted_) return;
    }
    // Deletion branch.
    mapping_[static_cast<size_t>(pv)] = kEps;
    Extend(depth + 1,
           cost + costs_.vertex_indel + EdgeCost(pv, kEps));
    mapping_[static_cast<size_t>(pv)] = kUnassigned;
  }

  const Graph& a_;
  const Graph& b_;
  EditCosts costs_;
  uint64_t max_nodes_;
  std::vector<int> mapping_;
  std::vector<bool> used_;
  double best_ = std::numeric_limits<double>::max();
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

GedResult GraphEditDistance(const Graph& a, const Graph& b,
                            const EditCosts& costs, uint64_t max_nodes) {
  GDIM_CHECK(costs.vertex_substitution >= 0 && costs.vertex_indel >= 0 &&
             costs.edge_substitution >= 0 && costs.edge_indel >= 0)
      << "edit costs must be non-negative";
  GedSearch search(a, b, costs, max_nodes);
  return search.Run();
}

}  // namespace gdim
