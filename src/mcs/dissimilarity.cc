#include "mcs/dissimilarity.h"

#include <algorithm>

#include "common/parallel.h"

namespace gdim {

double Delta1FromMcs(int mcs_edges, int edges_a, int edges_b) {
  int denom = std::max(edges_a, edges_b);
  if (denom == 0) return 0.0;  // two empty graphs are identical
  return 1.0 - static_cast<double>(mcs_edges) / denom;
}

double Delta2FromMcs(int mcs_edges, int edges_a, int edges_b) {
  int denom = edges_a + edges_b;
  if (denom == 0) return 0.0;
  return 1.0 - 2.0 * static_cast<double>(mcs_edges) / denom;
}

double GraphDissimilarity(const Graph& a, const Graph& b,
                          DissimilarityKind kind,
                          const McsOptions& mcs_options) {
  int mcs = MaxCommonEdgeSubgraph(a, b, mcs_options).common_edges;
  return kind == DissimilarityKind::kDelta1
             ? Delta1FromMcs(mcs, a.NumEdges(), b.NumEdges())
             : Delta2FromMcs(mcs, a.NumEdges(), b.NumEdges());
}

DissimilarityMatrix DissimilarityMatrix::FromDense(int n,
                                                   std::vector<double> values) {
  GDIM_CHECK(static_cast<size_t>(n) * static_cast<size_t>(n) == values.size())
      << "dense buffer size mismatch";
  DissimilarityMatrix m;
  m.n_ = n;
  m.values_ = std::move(values);
  return m;
}

DissimilarityMatrix DissimilarityMatrix::Compute(const GraphDatabase& db,
                                                 DissimilarityKind kind,
                                                 const McsOptions& mcs_options,
                                                 int threads) {
  DissimilarityMatrix m;
  m.n_ = static_cast<int>(db.size());
  m.values_.assign(static_cast<size_t>(m.n_) * static_cast<size_t>(m.n_),
                   0.0);
  // Flatten the upper triangle into a work list for dynamic load balancing.
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(m.n_) * (m.n_ - 1) / 2);
  for (int i = 0; i < m.n_; ++i) {
    for (int j = i + 1; j < m.n_; ++j) pairs.emplace_back(i, j);
  }
  ParallelFor(
      0, static_cast<int>(pairs.size()),
      [&](int k) {
        auto [i, j] = pairs[static_cast<size_t>(k)];
        double d = GraphDissimilarity(db[static_cast<size_t>(i)],
                                      db[static_cast<size_t>(j)], kind,
                                      mcs_options);
        m.values_[static_cast<size_t>(i) * static_cast<size_t>(m.n_) +
                  static_cast<size_t>(j)] = d;
        m.values_[static_cast<size_t>(j) * static_cast<size_t>(m.n_) +
                  static_cast<size_t>(i)] = d;
      },
      threads);
  return m;
}

std::vector<std::vector<double>> QueryDissimilarities(
    const GraphDatabase& queries, const GraphDatabase& db,
    DissimilarityKind kind, const McsOptions& mcs_options, int threads) {
  std::vector<std::vector<double>> out(
      queries.size(), std::vector<double>(db.size(), 0.0));
  ParallelFor(
      0, static_cast<int>(queries.size()) * static_cast<int>(db.size()),
      [&](int k) {
        int qi = k / static_cast<int>(db.size());
        int gi = k % static_cast<int>(db.size());
        out[static_cast<size_t>(qi)][static_cast<size_t>(gi)] =
            GraphDissimilarity(queries[static_cast<size_t>(qi)],
                               db[static_cast<size_t>(gi)], kind, mcs_options);
      },
      threads);
  return out;
}

}  // namespace gdim
