#ifndef GDIM_MCS_MAX_CLIQUE_H_
#define GDIM_MCS_MAX_CLIQUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gdim {

/// A dense undirected graph over vertices 0..n-1 with bitset adjacency,
/// built for the maximum-clique solver (product graphs are dense).
class BitsetGraph {
 public:
  explicit BitsetGraph(int n);

  int n() const { return n_; }
  void AddEdge(int u, int v);
  bool HasEdge(int u, int v) const {
    return (rows_[static_cast<size_t>(u) * words_ +
                  static_cast<size_t>(v >> 6)] >>
            (v & 63)) &
           1ULL;
  }
  int Degree(int v) const;

  /// Row pointer for intersection operations (words() 64-bit words).
  const uint64_t* Row(int v) const {
    return &rows_[static_cast<size_t>(v) * words_];
  }
  size_t words() const { return words_; }

 private:
  int n_ = 0;
  size_t words_ = 0;
  std::vector<uint64_t> rows_;
};

/// Result of a maximum clique search.
struct MaxCliqueResult {
  int size = 0;                ///< best clique size found
  std::vector<int> vertices;   ///< one maximum clique
  bool optimal = true;         ///< false if the node budget was exhausted
  uint64_t nodes = 0;          ///< branch-and-bound nodes visited
};

/// Tomita-style branch and bound (MCS/MCR family): candidates are greedily
/// colored each expansion and pruned by size + color bound. `stop_at` allows
/// early exit once a clique of that size is found (0 = run to optimality);
/// `max_nodes` bounds the search (0 = unlimited).
MaxCliqueResult MaxClique(const BitsetGraph& g, int stop_at = 0,
                          uint64_t max_nodes = 0);

}  // namespace gdim

#endif  // GDIM_MCS_MAX_CLIQUE_H_
