#ifndef GDIM_MCS_DISSIMILARITY_H_
#define GDIM_MCS_DISSIMILARITY_H_

#include <vector>

#include "graph/graph.h"
#include "mcs/mcs.h"

namespace gdim {

/// Which MCS-based graph dissimilarity to use (Sec. 2 of the paper).
enum class DissimilarityKind {
  /// δ1(q,g) = 1 − |E(mcs)| / max(|E(q)|, |E(g)|)  [Bunke & Shearer].
  kDelta1,
  /// δ2(q,g) = 1 − 2|E(mcs)| / (|E(q)| + |E(g)|)  [Zhu et al., EDBT'12].
  /// The paper's experiments use δ2; so do ours.
  kDelta2,
};

/// δ1 with the given common edge count. Both-empty graphs have δ = 0.
double Delta1FromMcs(int mcs_edges, int edges_a, int edges_b);

/// δ2 with the given common edge count. Both-empty graphs have δ = 0.
double Delta2FromMcs(int mcs_edges, int edges_a, int edges_b);

/// Computes δ(a, b) including the MCS computation.
double GraphDissimilarity(const Graph& a, const Graph& b,
                          DissimilarityKind kind = DissimilarityKind::kDelta2,
                          const McsOptions& mcs_options = {});

/// Symmetric n×n matrix of pairwise dissimilarities, stored densely.
/// Row-major, diag = 0. Pairwise MCS computations run in parallel.
class DissimilarityMatrix {
 public:
  DissimilarityMatrix() = default;

  /// Computes all pairwise dissimilarities of db.
  static DissimilarityMatrix Compute(
      const GraphDatabase& db,
      DissimilarityKind kind = DissimilarityKind::kDelta2,
      const McsOptions& mcs_options = {}, int threads = 0);

  /// Wraps an existing dense row-major n×n buffer (must be symmetric with a
  /// zero diagonal). Used when values come from an external oracle (DSPMap
  /// blocks, synthetic tests).
  static DissimilarityMatrix FromDense(int n, std::vector<double> values);

  int size() const { return n_; }
  double at(int i, int j) const {
    GDIM_DCHECK(i >= 0 && i < n_ && j >= 0 && j < n_);
    return values_[static_cast<size_t>(i) * static_cast<size_t>(n_) +
                   static_cast<size_t>(j)];
  }

 private:
  int n_ = 0;
  std::vector<double> values_;
};

/// Dissimilarities from each query to each database graph:
/// result[qi][gi] = δ(queries[qi], db[gi]). Runs in parallel over queries.
std::vector<std::vector<double>> QueryDissimilarities(
    const GraphDatabase& queries, const GraphDatabase& db,
    DissimilarityKind kind = DissimilarityKind::kDelta2,
    const McsOptions& mcs_options = {}, int threads = 0);

}  // namespace gdim

#endif  // GDIM_MCS_DISSIMILARITY_H_
