#include "mcs/max_clique.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace gdim {

BitsetGraph::BitsetGraph(int n) : n_(n), words_((static_cast<size_t>(n) + 63) / 64) {
  GDIM_CHECK(n >= 0);
  rows_.assign(static_cast<size_t>(n) * words_, 0);
}

void BitsetGraph::AddEdge(int u, int v) {
  GDIM_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v);
  rows_[static_cast<size_t>(u) * words_ + static_cast<size_t>(v >> 6)] |=
      1ULL << (v & 63);
  rows_[static_cast<size_t>(v) * words_ + static_cast<size_t>(u >> 6)] |=
      1ULL << (u & 63);
}

int BitsetGraph::Degree(int v) const {
  const uint64_t* row = Row(v);
  int deg = 0;
  for (size_t w = 0; w < words_; ++w) deg += __builtin_popcountll(row[w]);
  return deg;
}

namespace {

// Branch-and-bound state. Candidate sets are passed as explicit vertex
// vectors (already intersected with the current clique's neighborhoods).
class CliqueSearch {
 public:
  CliqueSearch(const BitsetGraph& g, int stop_at, uint64_t max_nodes)
      : g_(g), stop_at_(stop_at), max_nodes_(max_nodes) {}

  MaxCliqueResult Run() {
    std::vector<int> all(static_cast<size_t>(g_.n()));
    std::iota(all.begin(), all.end(), 0);
    // Initial order: descending degree helps the first coloring.
    std::sort(all.begin(), all.end(),
              [this](int a, int b) { return g_.Degree(a) > g_.Degree(b); });
    Expand(all);
    MaxCliqueResult result;
    result.size = best_;
    result.vertices = best_clique_;
    result.optimal = !aborted_;
    result.nodes = nodes_;
    return result;
  }

 private:
  bool Done() const {
    return aborted_ || (stop_at_ > 0 && best_ >= stop_at_);
  }

  // Greedy sequential coloring of candidates; returns them reordered by
  // color (ascending) with matching color numbers. The classic bound: a
  // clique within `cands` cannot exceed the number of colors.
  void ColorSort(const std::vector<int>& cands, std::vector<int>* ordered,
                 std::vector<int>* colors) const {
    const size_t words = g_.words();
    // color_classes[c] holds a bitmask of vertices already in color c.
    std::vector<std::vector<uint64_t>> class_bits;
    std::vector<std::vector<int>> class_members;
    for (int v : cands) {
      const uint64_t* row = g_.Row(v);
      size_t c = 0;
      for (; c < class_bits.size(); ++c) {
        // v can join class c iff it conflicts with no member: row ∩ class = ∅.
        bool conflict = false;
        const uint64_t* bits = class_bits[c].data();
        for (size_t w = 0; w < words; ++w) {
          if (row[w] & bits[w]) {
            conflict = true;
            break;
          }
        }
        if (!conflict) break;
      }
      if (c == class_bits.size()) {
        class_bits.emplace_back(words, 0);
        class_members.emplace_back();
      }
      class_bits[c][static_cast<size_t>(v >> 6)] |= 1ULL << (v & 63);
      class_members[c].push_back(v);
    }
    ordered->clear();
    colors->clear();
    for (size_t c = 0; c < class_members.size(); ++c) {
      for (int v : class_members[c]) {
        ordered->push_back(v);
        colors->push_back(static_cast<int>(c) + 1);
      }
    }
  }

  void Expand(const std::vector<int>& cands) {
    if (max_nodes_ != 0 && nodes_ >= max_nodes_) {
      aborted_ = true;
      return;
    }
    ++nodes_;
    if (cands.empty()) {
      if (static_cast<int>(current_.size()) > best_) {
        best_ = static_cast<int>(current_.size());
        best_clique_ = current_;
      }
      return;
    }
    std::vector<int> ordered, colors;
    ColorSort(cands, &ordered, &colors);
    // Iterate from the highest color down (classic Tomita order).
    for (int i = static_cast<int>(ordered.size()) - 1; i >= 0; --i) {
      if (Done()) return;
      if (static_cast<int>(current_.size()) + colors[static_cast<size_t>(i)] <=
          best_) {
        return;  // all remaining have smaller/equal color: prune branch
      }
      int v = ordered[static_cast<size_t>(i)];
      current_.push_back(v);
      // New candidates: earlier-ordered vertices adjacent to v.
      std::vector<int> next;
      next.reserve(static_cast<size_t>(i));
      for (int j = 0; j < i; ++j) {
        int u = ordered[static_cast<size_t>(j)];
        if (g_.HasEdge(v, u)) next.push_back(u);
      }
      Expand(next);
      current_.pop_back();
      if (static_cast<int>(current_.size()) + colors[static_cast<size_t>(i)] <=
              best_ ||
          Done()) {
        return;
      }
    }
  }

  const BitsetGraph& g_;
  int stop_at_ = 0;
  uint64_t max_nodes_ = 0;
  std::vector<int> current_;
  std::vector<int> best_clique_;
  int best_ = 0;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

MaxCliqueResult MaxClique(const BitsetGraph& g, int stop_at,
                          uint64_t max_nodes) {
  CliqueSearch search(g, stop_at, max_nodes);
  return search.Run();
}

}  // namespace gdim
