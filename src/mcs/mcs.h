#ifndef GDIM_MCS_MCS_H_
#define GDIM_MCS_MCS_H_

#include <cstdint>

#include "graph/graph.h"

namespace gdim {

/// Which exact MCES algorithm to run.
enum class McsAlgorithm {
  /// Hybrid: McGregor with a small node budget first (wins on easy pairs),
  /// then the clique formulation for the hard ones. The default.
  kAuto,
  /// RASCAL-style reduction to maximum clique on the edge-product graph
  /// with Tomita coloring bounds. Robust on similar label-uniform graphs.
  kClique,
  /// McGregor vertex-correspondence branch and bound.
  kMcGregor,
};

/// Options for maximum common subgraph computation.
struct McsOptions {
  /// Require the common subgraph to be connected. The paper's mcs(,) is the
  /// unconstrained maximum common (edge) subgraph, the default here.
  bool connected = false;

  /// Branch-and-bound node budget; 0 = unlimited. If exhausted the search
  /// returns the best solution found so far with optimal=false.
  uint64_t max_nodes = 0;

  /// Algorithm choice (ignored for connected mode, which has its own
  /// growth-based search).
  McsAlgorithm algorithm = McsAlgorithm::kAuto;
};

/// Result of a maximum common subgraph computation.
struct McsResult {
  /// |E(mcs(a,b))| — number of edges of the maximum common subgraph.
  int common_edges = 0;
  /// True iff the search ran to completion (result is exact).
  bool optimal = true;
  /// Branch-and-bound nodes visited.
  uint64_t nodes = 0;
};

/// Computes |E(mcs(a, b))| for undirected labeled graphs via McGregor-style
/// branch and bound over vertex correspondences, maximizing matched edges.
/// Vertex and edge labels must match exactly for an edge to be common.
McsResult MaxCommonEdgeSubgraph(const Graph& a, const Graph& b,
                                const McsOptions& options = {});

/// Convenience: the size (edge count) of the maximum common subgraph.
int McsSize(const Graph& a, const Graph& b);

}  // namespace gdim

#endif  // GDIM_MCS_MCS_H_
