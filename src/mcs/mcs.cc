#include "mcs/mcs.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/graph_utils.h"
#include "mcs/max_clique.h"

namespace gdim {

namespace {

// Shared helpers -------------------------------------------------------------

// Connectivity-aware static order (highest-degree first, then most-linked).
std::vector<VertexId> BuildConnectivityOrder(const Graph& g) {
  const int n = g.NumVertices();
  std::vector<VertexId> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<bool> placed(static_cast<size_t>(n), false);
  std::vector<int> linked(static_cast<size_t>(n), 0);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    for (VertexId v = 0; v < n; ++v) {
      if (placed[static_cast<size_t>(v)]) continue;
      if (best < 0 ||
          linked[static_cast<size_t>(v)] > linked[static_cast<size_t>(best)] ||
          (linked[static_cast<size_t>(v)] ==
               linked[static_cast<size_t>(best)] &&
           g.Degree(v) > g.Degree(best))) {
        best = v;
      }
    }
    placed[static_cast<size_t>(best)] = true;
    order.push_back(best);
    for (const AdjEntry& e : g.Neighbors(best)) {
      ++linked[static_cast<size_t>(e.neighbor)];
    }
  }
  return order;
}

// edge_feasible[e]: pattern edge e's label triple occurs in the target at
// all. Infeasible edges can never be matched.
std::vector<bool> ComputeEdgeFeasibility(const Graph& pattern,
                                         const Graph& target) {
  auto te = EdgeTripleHistogram(target);
  std::vector<bool> feasible(static_cast<size_t>(pattern.NumEdges()), false);
  for (EdgeId e = 0; e < pattern.NumEdges(); ++e) {
    const Edge& edge = pattern.GetEdge(e);
    LabelId lu = pattern.VertexLabel(edge.u);
    LabelId lv = pattern.VertexLabel(edge.v);
    if (lu > lv) std::swap(lu, lv);
    feasible[static_cast<size_t>(e)] = te.count({lu, edge.label, lv}) > 0;
  }
  return feasible;
}

// Unconstrained MCES ----------------------------------------------------------

// McGregor branch and bound. Vertices of the pattern are assigned, in a
// connectivity-aware static order, either to a compatible target vertex or to
// "null" (unmatched). Score = matched pattern edges; a pattern edge is scored
// when its *second* endpoint is decided. Optimistic bound: all feasible edges
// not yet lost could still match.
class McGregorSearch {
 public:
  McGregorSearch(const Graph& pattern, const Graph& target,
                 const McsOptions& options)
      : pattern_(pattern), target_(target), options_(options) {}

  McsResult Run() {
    McsResult result;
    upper_cap_ = EdgeLabelIntersectionBound(pattern_, target_);
    if (pattern_.NumVertices() == 0 || target_.NumVertices() == 0 ||
        upper_cap_ == 0) {
      return result;
    }
    order_ = BuildConnectivityOrder(pattern_);
    edge_feasible_ = ComputeEdgeFeasibility(pattern_, target_);
    feasible_total_ = 0;
    for (bool f : edge_feasible_) feasible_total_ += f ? 1 : 0;

    mapping_.assign(static_cast<size_t>(pattern_.NumVertices()), kUnassigned);
    used_.assign(static_cast<size_t>(target_.NumVertices()), false);
    decided_.assign(static_cast<size_t>(pattern_.NumVertices()), false);
    Extend(0, /*matched=*/0, /*lost=*/0);
    result.common_edges = best_;
    result.optimal = !aborted_;
    result.nodes = nodes_;
    return result;
  }

 private:
  static constexpr int kUnassigned = -2;
  static constexpr int kNull = -1;

  void Extend(size_t depth, int matched, int lost) {
    if (options_.max_nodes != 0 && nodes_ >= options_.max_nodes) {
      aborted_ = true;
      return;
    }
    ++nodes_;
    best_ = std::max(best_, matched);
    if (best_ >= upper_cap_) return;
    if (depth == order_.size()) return;
    if (feasible_total_ - lost <= best_) return;

    VertexId pv = order_[depth];
    // Explore high-gain assignments first: strong incumbents early make the
    // feasible_total − lost bound prune aggressively.
    std::vector<std::tuple<int, int, VertexId>> candidates;  // (-gain, miss, tv)
    for (VertexId tv = 0; tv < target_.NumVertices(); ++tv) {
      if (used_[static_cast<size_t>(tv)]) continue;
      if (pattern_.VertexLabel(pv) != target_.VertexLabel(tv)) continue;
      int gain = 0, miss = 0;
      CountEdgeOutcome(pv, tv, &gain, &miss);
      candidates.emplace_back(-gain, miss, tv);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [neg_gain, miss, tv] : candidates) {
      const int gain = -neg_gain;
      if (feasible_total_ - lost - miss <= best_) continue;  // child bound
      mapping_[static_cast<size_t>(pv)] = tv;
      used_[static_cast<size_t>(tv)] = true;
      decided_[static_cast<size_t>(pv)] = true;
      Extend(depth + 1, matched + gain, lost + miss);
      decided_[static_cast<size_t>(pv)] = false;
      used_[static_cast<size_t>(tv)] = false;
      mapping_[static_cast<size_t>(pv)] = kUnassigned;
      if (aborted_ || best_ >= upper_cap_) return;
    }
    // Null branch: feasible edges from pv to already-decided neighbors are
    // lost now; edges to future vertices are charged when those vertices get
    // decided (pv will then be a decided, null-mapped neighbor).
    int null_loss = 0;
    for (const AdjEntry& e : pattern_.Neighbors(pv)) {
      if (decided_[static_cast<size_t>(e.neighbor)] &&
          edge_feasible_[static_cast<size_t>(e.edge)]) {
        ++null_loss;
      }
    }
    mapping_[static_cast<size_t>(pv)] = kNull;
    decided_[static_cast<size_t>(pv)] = true;
    Extend(depth + 1, matched, lost + null_loss);
    decided_[static_cast<size_t>(pv)] = false;
    mapping_[static_cast<size_t>(pv)] = kUnassigned;
  }

  // For candidate pv->tv: pattern edges to already-decided neighbors that
  // become matched (gain) or definitively fail (miss; feasible edges only).
  void CountEdgeOutcome(VertexId pv, VertexId tv, int* gain,
                        int* miss) const {
    for (const AdjEntry& e : pattern_.Neighbors(pv)) {
      if (!decided_[static_cast<size_t>(e.neighbor)]) continue;
      VertexId image = mapping_[static_cast<size_t>(e.neighbor)];
      bool ok = false;
      if (image >= 0) {
        EdgeId te = target_.FindEdge(tv, image);
        ok = te >= 0 && target_.GetEdge(te).label == e.edge_label;
      }
      if (ok) {
        ++*gain;
      } else if (edge_feasible_[static_cast<size_t>(e.edge)]) {
        ++*miss;
      }
    }
  }

  const Graph& pattern_;
  const Graph& target_;
  McsOptions options_;
  std::vector<VertexId> order_;
  std::vector<int> mapping_;
  std::vector<bool> used_;
  std::vector<bool> decided_;
  std::vector<bool> edge_feasible_;
  int feasible_total_ = 0;
  int upper_cap_ = 0;
  int best_ = 0;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

// Connected MCES --------------------------------------------------------------

// Growth-based branch and bound for the *connected* maximum common edge
// subgraph. For every compatible seed pair (u0,v0) it enumerates, via
// set-enumeration with per-level pair bans (each mapped-pair set visited
// once), all connected common subgraphs containing that pair; after a seed is
// fully explored the pair is banned globally (any solution containing it has
// been counted). Completeness follows from: a connected common subgraph can
// always be grown from any of its pairs by adding vertices adjacent through
// matched edges.
class ConnectedMcsSearch {
 public:
  ConnectedMcsSearch(const Graph& pattern, const Graph& target,
                     const McsOptions& options)
      : pattern_(pattern), target_(target), options_(options) {}

  McsResult Run() {
    McsResult result;
    upper_cap_ = EdgeLabelIntersectionBound(pattern_, target_);
    if (pattern_.NumEdges() == 0 || target_.NumEdges() == 0 ||
        upper_cap_ == 0) {
      return result;
    }
    const int np = pattern_.NumVertices();
    const int nt = target_.NumVertices();
    mapping_.assign(static_cast<size_t>(np), -1);
    used_.assign(static_cast<size_t>(nt), false);
    banned_.assign(static_cast<size_t>(np) * static_cast<size_t>(nt), false);
    for (VertexId u = 0; u < np && !aborted_; ++u) {
      for (VertexId v = 0; v < nt && !aborted_; ++v) {
        if (pattern_.VertexLabel(u) != target_.VertexLabel(v)) continue;
        if (banned_[PairIndex(u, v)]) continue;
        mapping_[static_cast<size_t>(u)] = v;
        used_[static_cast<size_t>(v)] = true;
        Grow(/*matched=*/0);
        used_[static_cast<size_t>(v)] = false;
        mapping_[static_cast<size_t>(u)] = -1;
        banned_[PairIndex(u, v)] = true;  // global: all solutions with (u,v) done
      }
    }
    result.common_edges = best_;
    result.optimal = !aborted_;
    result.nodes = nodes_;
    return result;
  }

 private:
  size_t PairIndex(VertexId u, VertexId v) const {
    return static_cast<size_t>(u) * static_cast<size_t>(target_.NumVertices()) +
           static_cast<size_t>(v);
  }

  // Optimistic bound: matched + feasible pattern edges that still have an
  // unmapped endpoint (an edge with both endpoints mapped is already matched
  // or permanently absent from this growth branch).
  int Bound(int matched) const {
    int open = 0;
    for (EdgeId e = 0; e < pattern_.NumEdges(); ++e) {
      const Edge& edge = pattern_.GetEdge(e);
      if (mapping_[static_cast<size_t>(edge.u)] < 0 ||
          mapping_[static_cast<size_t>(edge.v)] < 0) {
        ++open;
      }
    }
    return std::min(matched + open, upper_cap_);
  }

  void Grow(int matched) {
    if (options_.max_nodes != 0 && nodes_ >= options_.max_nodes) {
      aborted_ = true;
      return;
    }
    ++nodes_;
    best_ = std::max(best_, matched);
    if (best_ >= upper_cap_) return;
    if (Bound(matched) <= best_) return;

    // Candidates: (u,v) with u unmapped, v unused, compatible labels, not
    // banned, and at least one matched edge into the current mapping.
    std::vector<std::tuple<VertexId, VertexId, int>> candidates;
    for (VertexId u = 0; u < pattern_.NumVertices(); ++u) {
      if (mapping_[static_cast<size_t>(u)] >= 0) continue;
      for (VertexId v = 0; v < target_.NumVertices(); ++v) {
        if (used_[static_cast<size_t>(v)]) continue;
        if (banned_[PairIndex(u, v)]) continue;
        if (pattern_.VertexLabel(u) != target_.VertexLabel(v)) continue;
        int gain = Gain(u, v);
        if (gain > 0) candidates.emplace_back(u, v, gain);
      }
    }
    // Larger immediate gain first: finds strong incumbents early.
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                return std::get<2>(a) > std::get<2>(b);
              });
    std::vector<size_t> banned_here;
    for (const auto& [u, v, gain] : candidates) {
      if (aborted_) break;
      mapping_[static_cast<size_t>(u)] = v;
      used_[static_cast<size_t>(v)] = true;
      Grow(matched + gain);
      used_[static_cast<size_t>(v)] = false;
      mapping_[static_cast<size_t>(u)] = -1;
      size_t idx = PairIndex(u, v);
      banned_[idx] = true;  // later branches at this node exclude (u,v)
      banned_here.push_back(idx);
    }
    for (size_t idx : banned_here) banned_[idx] = false;
  }

  // Matched edges from u (about to map to v) into the current mapping.
  int Gain(VertexId u, VertexId v) const {
    int gain = 0;
    for (const AdjEntry& e : pattern_.Neighbors(u)) {
      VertexId image = mapping_[static_cast<size_t>(e.neighbor)];
      if (image < 0) continue;
      EdgeId te = target_.FindEdge(v, image);
      if (te >= 0 && target_.GetEdge(te).label == e.edge_label) ++gain;
    }
    return gain;
  }

  const Graph& pattern_;
  const Graph& target_;
  McsOptions options_;
  std::vector<int> mapping_;
  std::vector<bool> used_;
  std::vector<bool> banned_;
  int upper_cap_ = 0;
  int best_ = 0;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

// Clique-based MCES (the RASCAL reduction): one product node per
// label-compatible *oriented* (pattern edge, target edge) pair; two nodes
// are adjacent iff their unioned endpoint correspondences form a consistent
// injective partial vertex map. Any clique therefore is a common edge
// subgraph and vice versa, so max clique size = |E(mcs)|.
McsResult CliqueMcs(const Graph& pattern, const Graph& target,
                    const McsOptions& options, int upper_cap) {
  struct Node {
    EdgeId pe;
    // Oriented endpoint images: pattern u,v -> target x,y.
    VertexId pu, pv, tx, ty;
    EdgeId te;
  };
  std::vector<Node> nodes;
  for (EdgeId pe = 0; pe < pattern.NumEdges(); ++pe) {
    const Edge& ep = pattern.GetEdge(pe);
    for (EdgeId te = 0; te < target.NumEdges(); ++te) {
      const Edge& et = target.GetEdge(te);
      if (ep.label != et.label) continue;
      if (pattern.VertexLabel(ep.u) == target.VertexLabel(et.u) &&
          pattern.VertexLabel(ep.v) == target.VertexLabel(et.v)) {
        nodes.push_back(Node{pe, ep.u, ep.v, et.u, et.v, te});
      }
      if (pattern.VertexLabel(ep.u) == target.VertexLabel(et.v) &&
          pattern.VertexLabel(ep.v) == target.VertexLabel(et.u)) {
        nodes.push_back(Node{pe, ep.u, ep.v, et.v, et.u, te});
      }
    }
  }
  const int nn = static_cast<int>(nodes.size());
  BitsetGraph product(nn);
  auto consistent = [](VertexId p1, VertexId t1, VertexId p2, VertexId t2) {
    if (p1 == p2) return t1 == t2;
    return t1 != t2;
  };
  for (int i = 0; i < nn; ++i) {
    for (int j = i + 1; j < nn; ++j) {
      const Node& a = nodes[static_cast<size_t>(i)];
      const Node& b = nodes[static_cast<size_t>(j)];
      if (a.pe == b.pe || a.te == b.te) continue;
      if (consistent(a.pu, a.tx, b.pu, b.tx) &&
          consistent(a.pu, a.tx, b.pv, b.ty) &&
          consistent(a.pv, a.ty, b.pu, b.tx) &&
          consistent(a.pv, a.ty, b.pv, b.ty)) {
        product.AddEdge(i, j);
      }
    }
  }
  MaxCliqueResult clique =
      MaxClique(product, /*stop_at=*/upper_cap, options.max_nodes);
  McsResult result;
  result.common_edges = clique.size;
  // Hitting stop_at early is still optimal (the cap is a valid bound).
  result.optimal = clique.optimal || clique.size >= upper_cap;
  result.nodes = clique.nodes;
  return result;
}

}  // namespace

McsResult MaxCommonEdgeSubgraph(const Graph& a, const Graph& b,
                                const McsOptions& options) {
  // Use the smaller graph (by vertices) as the pattern to shrink the tree.
  const Graph& pattern = a.NumVertices() <= b.NumVertices() ? a : b;
  const Graph& target = a.NumVertices() <= b.NumVertices() ? b : a;
  if (options.connected) {
    ConnectedMcsSearch search(pattern, target, options);
    return search.Run();
  }
  const int upper_cap =
      std::min(EdgeLabelIntersectionBound(pattern, target),
               std::min(pattern.NumEdges(), target.NumEdges()));
  if (upper_cap == 0) return McsResult{};
  switch (options.algorithm) {
    case McsAlgorithm::kMcGregor: {
      McGregorSearch search(pattern, target, options);
      return search.Run();
    }
    case McsAlgorithm::kClique:
      return CliqueMcs(pattern, target, options, upper_cap);
    case McsAlgorithm::kAuto: {
      // The coloring-bounded clique search dominates McGregor across this
      // problem domain (labeled graphs of 10–20 vertices), including the
      // similar label-uniform pairs where McGregor's bound collapses — see
      // bench/ablation_optimizations. McGregor remains the fallback when
      // the edge-product graph would be too large to materialize.
      const long long product_nodes = 2LL * pattern.NumEdges() *
                                      static_cast<long long>(target.NumEdges());
      if (product_nodes > 200000) {
        McGregorSearch search(pattern, target, options);
        return search.Run();
      }
      return CliqueMcs(pattern, target, options, upper_cap);
    }
  }
  return McsResult{};
}

int McsSize(const Graph& a, const Graph& b) {
  return MaxCommonEdgeSubgraph(a, b).common_edges;
}

}  // namespace gdim
