// Chemical similarity search: the paper's motivating PubChem scenario.
// Builds a compound database, persists it in the gSpan text format, builds
// both a DSPM index and a dictionary-fingerprint baseline, and compares
// their top-k answers against the exact MCS ranking for a workload of
// unseen query molecules.
//
//   $ ./build/examples/chemical_search [db_size] [num_queries]

#include <cstdio>
#include <cstdlib>

#include "core/index.h"
#include "core/measures.h"
#include "datasets/chemgen.h"
#include "datasets/fingerprint.h"
#include "graph/graph_io.h"

int main(int argc, char** argv) {
  using namespace gdim;
  const int db_size = argc > 1 ? std::atoi(argv[1]) : 150;
  const int num_queries = argc > 2 ? std::atoi(argv[2]) : 20;
  const int k = 10;

  ChemGenOptions gen;
  gen.num_graphs = db_size;
  gen.num_families = std::max(10, db_size / 8);
  GraphDatabase db = GenerateChemDatabase(gen);
  GraphDatabase queries = GenerateChemQueries(gen, num_queries);

  // Persist and re-load the database to show the storage format round-trip.
  const std::string path = "/tmp/gdim_compounds.gdb";
  Status io = WriteGraphFile(db, path);
  if (!io.ok()) {
    std::fprintf(stderr, "write failed: %s\n", io.ToString().c_str());
    return 1;
  }
  Result<GraphDatabase> reloaded = ReadGraphFile(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("persisted %zu compounds to %s and reloaded %zu\n", db.size(),
              path.c_str(), reloaded->size());

  // DSPM index.
  IndexOptions options;
  options.selector = "DSPM";
  options.p = 80;
  Result<GraphSearchIndex> index = GraphSearchIndex::Build(*reloaded, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // Expert-dictionary fingerprint baseline (trained on a separate sample).
  ChemGenOptions dict_gen = gen;
  dict_gen.seed = gen.seed + 101;
  GraphDatabase dict_sample = GenerateChemDatabase(dict_gen);
  Result<FingerprintDictionary> dict =
      FingerprintDictionary::Build(dict_sample, /*max_bits=*/300);
  if (!dict.ok()) {
    std::fprintf(stderr, "dictionary build failed: %s\n",
                 dict.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<uint8_t>> db_fp;
  db_fp.reserve(db.size());
  for (const Graph& g : db) db_fp.push_back(dict->Fingerprint(g));

  // Evaluate both against the exact MCS ranking.
  double dspm_precision = 0.0, fp_precision = 0.0;
  for (const Graph& q : queries) {
    Ranking exact = ExactRanking(q, db);
    Ranking dspm = index->Query(q, db_size);
    std::vector<uint8_t> qfp = dict->Fingerprint(q);
    std::vector<double> scores(db.size());
    for (size_t i = 0; i < db.size(); ++i) {
      scores[i] = 1.0 - TanimotoSimilarity(qfp, db_fp[i]);
    }
    Ranking fp = RankByScores(scores);
    dspm_precision += PrecisionAtK(exact, dspm, k);
    fp_precision += PrecisionAtK(exact, fp, k);
  }
  dspm_precision /= num_queries;
  fp_precision /= num_queries;

  std::printf("\naverage precision@%d over %d unseen queries\n", k,
              num_queries);
  std::printf("  DSPM (%d dims)        %.3f\n",
              index->build_stats().selected_features, dspm_precision);
  std::printf("  fingerprint (%d bits) %.3f\n", dict->bits(), fp_precision);
  std::printf("\nThe automatically identified dimension plays the role of "
              "PubChem's hand-curated 881-bit fingerprint.\n");
  return 0;
}
