// Large-database indexing with DSPMap: the approximate algorithm whose
// indexing cost grows linearly with |DG| because it only evaluates MCS
// dissimilarities inside partition blocks (O(n·b) pairs instead of O(n²)).
//
//   $ ./build/examples/scalable_dspmap [db_size]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/index.h"
#include "datasets/chemgen.h"

int main(int argc, char** argv) {
  using namespace gdim;
  const int db_size = argc > 1 ? std::atoi(argv[1]) : 600;

  ChemGenOptions gen;
  gen.num_graphs = db_size;
  gen.num_families = std::max(10, db_size / 8);
  GraphDatabase db = GenerateChemDatabase(gen);
  std::printf("database: %d molecule-like graphs\n", db_size);

  IndexOptions options;
  options.selector = "DSPMap";
  options.p = 100;
  options.dspmap.partition_size = std::max(20, db_size / 20);

  WallTimer timer;
  Result<GraphSearchIndex> index = GraphSearchIndex::Build(db, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  double build = timer.Seconds();

  const long long full_pairs = static_cast<long long>(db_size) *
                               (db_size - 1) / 2;
  const int b = options.dspmap.partition_size;
  std::printf("DSPMap index built in %.2fs (partition size b=%d)\n", build,
              b);
  std::printf("  pairwise MCS budget: ~O(n*b) = %lld pairs vs full-matrix "
              "%lld pairs\n",
              2LL * db_size * b, full_pairs);
  std::printf("  dimensions selected: %d of %d mined\n",
              index->build_stats().selected_features,
              index->build_stats().mined_features);

  // Query throughput on the big index.
  GraphDatabase queries = GenerateChemQueries(gen, 50);
  timer.Reset();
  double checksum = 0;
  for (const Graph& q : queries) {
    Ranking top = index->Query(q, 10);
    checksum += top.front().score;
  }
  double qsecs = timer.Seconds();
  std::printf("  50 queries in %.3fs (%.2f ms/query, checksum %.3f)\n",
              qsecs, qsecs / 50 * 1e3, checksum);
  std::printf("\nThe same database with selector=DSPM would need the full "
              "%lld-pair dissimilarity matrix before selection even "
              "starts.\n",
              full_pairs);
  return 0;
}
