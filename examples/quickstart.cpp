// Quickstart: build a graph-dimension index over a small molecule database
// and answer a top-k similarity query — the end-to-end flow of the paper in
// ~40 lines of user code.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/index.h"
#include "datasets/chemgen.h"

int main() {
  using namespace gdim;

  // 1. A graph database: 120 generated molecule-like graphs (in a real
  //    application, load your own with ReadGraphFile).
  ChemGenOptions gen;
  gen.num_graphs = 120;
  GraphDatabase db = GenerateChemDatabase(gen);
  std::printf("database: %zu graphs\n", db.size());

  // 2. Build the index: gSpan mines candidate features, DSPM selects the
  //    p-dimensional structural dimension that preserves MCS dissimilarity.
  IndexOptions options;
  options.selector = "DSPM";
  options.p = 60;
  options.mining.min_support = 0.05;
  Result<GraphSearchIndex> index = GraphSearchIndex::Build(db, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  const IndexBuildStats& stats = index->build_stats();
  std::printf("index: %d mined features -> %d dimensions "
              "(mine %.2fs, delta %.2fs, select %.2fs)\n",
              stats.mined_features, stats.selected_features,
              stats.mining_seconds, stats.dissimilarity_seconds,
              stats.selection_seconds);

  // 3. Query with an unseen graph: mapped in milliseconds, no MCS involved.
  GraphDatabase queries = GenerateChemQueries(gen, 1);
  const Graph& q = queries[0];
  Ranking top = index->Query(q, 5);
  std::printf("\nquery %s -> top-5 by mapped distance\n",
              q.ToString().c_str());
  for (const RankedResult& r : top) {
    std::printf("  graph %-4d distance %.4f  (%s)\n", r.id, r.score,
                db[static_cast<size_t>(r.id)].ToString().c_str());
  }

  // 4. Compare with the exact MCS-based answer (slow path).
  Ranking exact = index->QueryExact(q, 5);
  std::printf("\nexact top-5 by MCS dissimilarity\n");
  for (const RankedResult& r : exact) {
    std::printf("  graph %-4d delta2   %.4f\n", r.id, r.score);
  }
  return 0;
}
