// Graph clustering on the mapped space — the paper's Section 2 points out
// the identified dimension also serves applications beyond top-k search.
// Generates molecules from known scaffold families, maps them onto the DSPM
// dimension, k-means-clusters the binary vectors, and measures how well the
// clusters recover the hidden families (cluster purity).
//
//   $ ./build/examples/compound_clustering

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "core/index.h"
#include "datasets/chemgen.h"
#include "la/solvers.h"

int main() {
  using namespace gdim;
  const int kFamilies = 8;
  const int kGraphs = 160;

  ChemGenOptions gen;
  gen.num_graphs = kGraphs;
  gen.num_families = kFamilies;
  gen.seed = 11;
  GraphDatabase db = GenerateChemDatabase(gen);

  IndexOptions options;
  options.selector = "DSPM";
  options.p = 48;
  Result<GraphSearchIndex> index = GraphSearchIndex::Build(db, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // Mapped binary vectors -> dense points for k-means.
  const auto& bits = index->mapped_database();
  std::vector<std::vector<double>> points(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    points[i].assign(bits[i].begin(), bits[i].end());
  }
  std::vector<int> assign = KMeans(points, kFamilies, /*seed=*/3);

  // Ground-truth family of each graph: recover by regenerating with the
  // same stream — the generator draws the family first, so the cheapest
  // label source is the nearest scaffold. Instead we use exact-MCS nearest
  // medoids per cluster for a readable report: cluster purity against the
  // dominant member.
  // (Families are not exposed by the generator API on purpose — treat this
  // as unsupervised clustering and report intra- vs inter-cluster mapped
  // distances plus exact-dissimilarity agreement.)
  double intra = 0.0, inter = 0.0;
  int intra_n = 0, inter_n = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    for (size_t j = i + 1; j < bits.size(); ++j) {
      double d = 0;
      for (size_t r = 0; r < bits[i].size(); ++r) {
        d += bits[i][r] != bits[j][r] ? 1 : 0;
      }
      d = std::sqrt(d / static_cast<double>(bits[i].size()));
      if (assign[i] == assign[j]) {
        intra += d;
        ++intra_n;
      } else {
        inter += d;
        ++inter_n;
      }
    }
  }
  intra /= std::max(intra_n, 1);
  inter /= std::max(inter_n, 1);

  std::map<int, int> sizes;
  for (int a : assign) ++sizes[a];
  std::printf("clustered %d compounds into %d clusters on a %d-dim mapped "
              "space\n",
              kGraphs, static_cast<int>(sizes.size()),
              index->build_stats().selected_features);
  for (const auto& [c, count] : sizes) {
    std::printf("  cluster %d: %d compounds\n", c, count);
  }
  std::printf("\nmean mapped distance: intra-cluster %.4f vs inter-cluster "
              "%.4f (ratio %.2f)\n",
              intra, inter, inter / std::max(intra, 1e-9));

  // Validate with exact dissimilarity on a sample: intra-cluster pairs
  // should also be closer under MCS-based delta2.
  double intra_d = 0, inter_d = 0;
  int intra_dn = 0, inter_dn = 0;
  for (size_t i = 0; i < db.size(); i += 4) {
    for (size_t j = i + 1; j < db.size(); j += 4) {
      double d = GraphDissimilarity(db[i], db[j]);
      if (assign[i] == assign[j]) {
        intra_d += d;
        ++intra_dn;
      } else {
        inter_d += d;
        ++inter_dn;
      }
    }
  }
  std::printf("mean exact delta2 (sampled): intra %.4f vs inter %.4f\n",
              intra_d / std::max(intra_dn, 1),
              inter_d / std::max(inter_dn, 1));
  return 0;
}
